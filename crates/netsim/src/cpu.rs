//! An N-CPU FIFO service centre modelling the server host.
//!
//! The Fig. 3/4 testbed server is a 4-CPU Sun E420R; Fig. 5/6 use a 2-CPU
//! Pentium III. A job (request-processing step) is dispatched to the CPU
//! that frees up earliest. The pool also exposes the per-process
//! context-switch overhead knob that the paper's §II argument about
//! multiprogramming models relies on: with many runnable processes,
//! "context switching and scheduling, cache misses, and lock contention"
//! inflate every quantum of service.

use crate::time::SimTime;

/// FIFO multi-CPU service centre.
#[derive(Debug, Clone)]
pub struct CpuPool {
    free_at: Vec<SimTime>,
    busy_accum_us: u64,
    jobs: u64,
}

impl CpuPool {
    /// Create a pool of `n` CPUs (n ≥ 1).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one CPU");
        Self {
            free_at: vec![SimTime::ZERO; n],
            busy_accum_us: 0,
            jobs: 0,
        }
    }

    /// Number of CPUs.
    pub fn cpus(&self) -> usize {
        self.free_at.len()
    }

    /// Dispatch a job with the given CPU `demand` at time `now`; returns
    /// its completion time. Jobs wait FIFO for the earliest-free CPU.
    pub fn run(&mut self, now: SimTime, demand: SimTime) -> SimTime {
        let idx = self.earliest();
        let start = self.free_at[idx].max(now);
        let done = start + demand;
        self.free_at[idx] = done;
        self.busy_accum_us += demand.as_micros();
        self.jobs += 1;
        done
    }

    /// Dispatch a job whose effective demand is inflated by a
    /// multiprogramming overhead factor: `demand * (1 + overhead)`. Used by
    /// the Apache process-per-connection model, where `overhead` grows with
    /// the number of runnable processes.
    pub fn run_with_overhead(&mut self, now: SimTime, demand: SimTime, overhead: f64) -> SimTime {
        let inflated =
            SimTime::from_micros((demand.as_micros() as f64 * (1.0 + overhead.max(0.0))) as u64);
        self.run(now, inflated)
    }

    /// Earliest time any CPU becomes free.
    pub fn next_free(&self) -> SimTime {
        self.free_at.iter().copied().min().unwrap_or(SimTime::ZERO)
    }

    /// How many CPUs are still busy at `now`.
    pub fn busy(&self, now: SimTime) -> usize {
        self.free_at.iter().filter(|&&t| t > now).count()
    }

    /// How long a job arriving at `now` would wait before starting.
    pub fn wait_estimate(&self, now: SimTime) -> SimTime {
        self.next_free().saturating_sub(now)
    }

    /// Fraction of aggregate CPU time spent busy over `elapsed`.
    pub fn utilization(&self, elapsed: SimTime) -> f64 {
        let total = elapsed.as_micros() * self.free_at.len() as u64;
        if total == 0 {
            0.0
        } else {
            self.busy_accum_us as f64 / total as f64
        }
    }

    /// Jobs served so far.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    fn earliest(&self) -> usize {
        let mut best = 0;
        for (i, &t) in self.free_at.iter().enumerate() {
            if t < self.free_at[best] {
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cpu_serializes() {
        let mut p = CpuPool::new(1);
        let a = p.run(SimTime::ZERO, SimTime::from_millis(10));
        let b = p.run(SimTime::ZERO, SimTime::from_millis(10));
        assert_eq!(a, SimTime::from_millis(10));
        assert_eq!(b, SimTime::from_millis(20));
    }

    #[test]
    fn multiple_cpus_run_in_parallel() {
        let mut p = CpuPool::new(4);
        for _ in 0..4 {
            let done = p.run(SimTime::ZERO, SimTime::from_millis(10));
            assert_eq!(done, SimTime::from_millis(10));
        }
        // Fifth job waits for a CPU.
        let done = p.run(SimTime::ZERO, SimTime::from_millis(10));
        assert_eq!(done, SimTime::from_millis(20));
    }

    #[test]
    fn idle_cpu_starts_immediately() {
        let mut p = CpuPool::new(2);
        p.run(SimTime::ZERO, SimTime::from_millis(10));
        let done = p.run(SimTime::from_millis(50), SimTime::from_millis(5));
        assert_eq!(done, SimTime::from_millis(55));
    }

    #[test]
    fn overhead_inflates_demand() {
        let mut p = CpuPool::new(1);
        let done = p.run_with_overhead(SimTime::ZERO, SimTime::from_millis(10), 0.5);
        assert_eq!(done, SimTime::from_millis(15));
        // Negative overhead is clamped to zero.
        let mut q = CpuPool::new(1);
        let done = q.run_with_overhead(SimTime::ZERO, SimTime::from_millis(10), -1.0);
        assert_eq!(done, SimTime::from_millis(10));
    }

    #[test]
    fn busy_and_wait_estimates() {
        let mut p = CpuPool::new(2);
        p.run(SimTime::ZERO, SimTime::from_millis(10));
        p.run(SimTime::ZERO, SimTime::from_millis(20));
        assert_eq!(p.busy(SimTime::from_millis(5)), 2);
        assert_eq!(p.busy(SimTime::from_millis(15)), 1);
        assert_eq!(p.busy(SimTime::from_millis(25)), 0);
        assert_eq!(
            p.wait_estimate(SimTime::from_millis(5)),
            SimTime::from_millis(5)
        );
        assert_eq!(p.wait_estimate(SimTime::from_millis(30)), SimTime::ZERO);
    }

    #[test]
    fn utilization_accounts_all_cpus() {
        let mut p = CpuPool::new(2);
        p.run(SimTime::ZERO, SimTime::from_millis(10));
        let u = p.utilization(SimTime::from_millis(10));
        assert!((u - 0.5).abs() < 1e-9);
        assert_eq!(p.jobs(), 1);
    }
}
