//! Event Sources — the Decorator-composed participant the N-Server adds
//! to the Reactor (paper §IV):
//!
//! > "events may arise from multiple sources, such as I/O ports, timers,
//! > or other application components. Different event sources have
//! > different characteristics, and therefore, they should be managed
//! > separately. Because it's not possible to anticipate and include all
//! > the event sources, there should be an effective mechanism for new
//! > event sources to be added. In view of these problems, an Event
//! > Source component that complies with the Decorator pattern is added."
//!
//! The network dispatcher in [`crate::reactor`] specialises this
//! machinery inline for sockets (the paper's deliberate
//! generality-for-efficiency trade). The generic form here is what the
//! pattern reduces to *without* the network specialisation — "a template
//! that instantiates the Reactor design pattern … used for many types of
//! applications, such as event-driven simulations and graphical user
//! interface frameworks" — and it powers the [`GenericReactor`] driver.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::event::Priority;

/// An application-level event produced by a source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceEvent<T> {
    /// Which registered source produced it.
    pub source: &'static str,
    /// Scheduling priority.
    pub priority: Priority,
    /// Payload.
    pub payload: T,
}

/// A pollable event source.
pub trait EventSource<T>: Send {
    /// Stable source name (used for registration and tracing).
    fn name(&self) -> &'static str;
    /// Collect the events that are ready right now.
    fn poll(&mut self, now: Instant) -> Vec<SourceEvent<T>>;
}

/// A source fed by other threads through a channel ("other application
/// components" in the paper's enumeration).
pub struct ChannelSource<T> {
    name: &'static str,
    priority: Priority,
    rx: Receiver<T>,
}

impl<T: Send> ChannelSource<T> {
    /// Create the source plus the sender handle producers use.
    pub fn new(name: &'static str, priority: Priority) -> (Self, Sender<T>) {
        let (tx, rx) = unbounded();
        (Self { name, priority, rx }, tx)
    }
}

impl<T: Send> EventSource<T> for ChannelSource<T> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn poll(&mut self, _now: Instant) -> Vec<SourceEvent<T>> {
        self.rx
            .try_iter()
            .map(|payload| SourceEvent {
                source: self.name,
                priority: self.priority,
                payload,
            })
            .collect()
    }
}

/// A periodic timer source.
pub struct TickSource<T: Clone> {
    name: &'static str,
    period: Duration,
    next: Instant,
    payload: T,
    priority: Priority,
}

impl<T: Clone + Send> TickSource<T> {
    /// Fire `payload` every `period`, starting one period from `now`.
    pub fn new(name: &'static str, period: Duration, payload: T, now: Instant) -> Self {
        Self {
            name,
            period,
            next: now + period,
            payload,
            priority: Priority::HIGHEST,
        }
    }
}

impl<T: Clone + Send> EventSource<T> for TickSource<T> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn poll(&mut self, now: Instant) -> Vec<SourceEvent<T>> {
        let mut out = Vec::new();
        while self.next <= now {
            out.push(SourceEvent {
                source: self.name,
                priority: self.priority,
                payload: self.payload.clone(),
            });
            self.next += self.period;
        }
        out
    }
}

/// The Decorator composition: a source that manages other sources —
/// registering, deregistering, and polling them in registration order.
pub struct CompositeSource<T> {
    sources: Vec<Box<dyn EventSource<T>>>,
}

impl<T> Default for CompositeSource<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CompositeSource<T> {
    /// An empty composite.
    pub fn new() -> Self {
        Self {
            sources: Vec::new(),
        }
    }

    /// Register a source (decorating the composite with one more layer).
    pub fn register(&mut self, source: Box<dyn EventSource<T>>) {
        self.sources.push(source);
    }

    /// Deregister by name; returns whether a source was removed.
    pub fn deregister(&mut self, name: &str) -> bool {
        let before = self.sources.len();
        self.sources.retain(|s| s.name() != name);
        self.sources.len() != before
    }

    /// Registered source count.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// True when no sources are registered.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }
}

impl<T: Send> EventSource<T> for CompositeSource<T> {
    fn name(&self) -> &'static str {
        "composite"
    }

    fn poll(&mut self, now: Instant) -> Vec<SourceEvent<T>> {
        let mut out = Vec::new();
        for s in &mut self.sources {
            out.extend(s.poll(now));
        }
        out
    }
}

/// A registered event handler.
pub type SourceHandler<T> = Arc<dyn Fn(SourceEvent<T>) + Send + Sync>;

/// Handler registry + dispatch loop over a composite source: the plain
/// Reactor the N-Server template degenerates to without its network
/// specialisation. Suitable for event-driven simulations, UI loops, etc.
pub struct GenericReactor<T> {
    source: CompositeSource<T>,
    handlers: HashMap<&'static str, SourceHandler<T>>,
    dispatched: u64,
}

impl<T: Send> Default for GenericReactor<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> GenericReactor<T> {
    /// An empty reactor.
    pub fn new() -> Self {
        Self {
            source: CompositeSource::new(),
            handlers: HashMap::new(),
            dispatched: 0,
        }
    }

    /// Register a source together with the Event Handler for its events.
    pub fn register(
        &mut self,
        source: Box<dyn EventSource<T>>,
        handler: impl Fn(SourceEvent<T>) + Send + Sync + 'static,
    ) {
        self.handlers.insert(source.name(), Arc::new(handler));
        self.source.register(source);
    }

    /// Deregister a source and its handler.
    pub fn deregister(&mut self, name: &str) -> bool {
        self.handlers.remove(name);
        self.source.deregister(name)
    }

    /// One demultiplex-and-dispatch iteration; returns events dispatched.
    pub fn poll_once(&mut self, now: Instant) -> usize {
        let events = self.source.poll(now);
        let n = events.len();
        for ev in events {
            if let Some(h) = self.handlers.get(ev.source) {
                h(ev);
                self.dispatched += 1;
            }
        }
        n
    }

    /// Total events dispatched to handlers.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }
}

/// Shared collector used by tests/examples as a trivial handler target.
pub type Collected<T> = Arc<Mutex<Vec<T>>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_source_delivers_in_order() {
        let (mut src, tx) = ChannelSource::new("chan", Priority(1));
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let evs = src.poll(Instant::now());
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].payload, 1);
        assert_eq!(evs[1].payload, 2);
        assert_eq!(evs[0].priority, Priority(1));
        assert_eq!(evs[0].source, "chan");
        assert!(src.poll(Instant::now()).is_empty());
    }

    #[test]
    fn tick_source_fires_per_period() {
        let t0 = Instant::now();
        let mut src = TickSource::new("tick", Duration::from_millis(10), "t", t0);
        assert!(src.poll(t0).is_empty());
        assert_eq!(src.poll(t0 + Duration::from_millis(10)).len(), 1);
        // 35ms total elapsed -> ticks at 10,20,30 -> two more.
        assert_eq!(src.poll(t0 + Duration::from_millis(35)).len(), 2);
    }

    #[test]
    fn composite_polls_all_registered_sources() {
        let t0 = Instant::now();
        let (chan, tx) = ChannelSource::new("chan", Priority(0));
        let tick = TickSource::new("tick", Duration::from_millis(5), 99, t0);
        let mut composite = CompositeSource::new();
        composite.register(Box::new(chan));
        composite.register(Box::new(tick));
        assert_eq!(composite.len(), 2);
        tx.send(7).unwrap();
        let evs = composite.poll(t0 + Duration::from_millis(5));
        let names: Vec<&str> = evs.iter().map(|e| e.source).collect();
        assert_eq!(names, vec!["chan", "tick"]);
    }

    #[test]
    fn deregistering_removes_a_layer() {
        let (chan, tx) = ChannelSource::<u32>::new("chan", Priority(0));
        let mut composite = CompositeSource::new();
        composite.register(Box::new(chan));
        assert!(composite.deregister("chan"));
        assert!(!composite.deregister("chan"));
        assert!(composite.is_empty());
        // The receiver is gone with the source; sends now fail cleanly.
        assert!(tx.send(1).is_err());
        assert!(composite.poll(Instant::now()).is_empty());
    }

    #[test]
    fn generic_reactor_dispatches_to_matching_handlers() {
        let t0 = Instant::now();
        let mut reactor = GenericReactor::new();
        let seen: Collected<(String, u32)> = Arc::new(Mutex::new(Vec::new()));

        let (chan_a, tx_a) = ChannelSource::new("a", Priority(0));
        let (chan_b, tx_b) = ChannelSource::new("b", Priority(0));
        let s1 = Arc::clone(&seen);
        reactor.register(Box::new(chan_a), move |ev| {
            s1.lock().push(("a".into(), ev.payload));
        });
        let s2 = Arc::clone(&seen);
        reactor.register(Box::new(chan_b), move |ev| {
            s2.lock().push(("b".into(), ev.payload));
        });

        tx_a.send(1).unwrap();
        tx_b.send(2).unwrap();
        tx_a.send(3).unwrap();
        let n = reactor.poll_once(t0);
        assert_eq!(n, 3);
        assert_eq!(reactor.dispatched(), 3);
        let got = seen.lock().clone();
        assert!(got.contains(&("a".into(), 1)));
        assert!(got.contains(&("b".into(), 2)));
        assert!(got.contains(&("a".into(), 3)));
    }

    #[test]
    fn generic_reactor_deregistration_stops_dispatch() {
        let mut reactor = GenericReactor::new();
        let seen: Collected<u32> = Arc::new(Mutex::new(Vec::new()));
        let (chan, tx) = ChannelSource::new("c", Priority(0));
        let s = Arc::clone(&seen);
        reactor.register(Box::new(chan), move |ev| s.lock().push(ev.payload));
        tx.send(1).unwrap();
        reactor.poll_once(Instant::now());
        assert!(reactor.deregister("c"));
        let _ = tx.send(2); // receiver dropped with the source
        reactor.poll_once(Instant::now());
        assert_eq!(&*seen.lock(), &vec![1]);
    }

    #[test]
    fn events_without_handlers_are_counted_but_dropped() {
        let mut reactor = GenericReactor::new();
        let (chan, tx) = ChannelSource::<u32>::new("c", Priority(0));
        // Register source directly on the composite via register + then
        // deregister only the handler path: simulate by registering and
        // deregistering, then re-adding the bare source.
        reactor.register(Box::new(chan), |_| {});
        reactor.deregister("c");
        let _ = tx.send(5); // receiver dropped with the source
        let n = reactor.poll_once(Instant::now());
        assert_eq!(n, 0, "source removed entirely");
        assert_eq!(reactor.dispatched(), 0);
    }
}
