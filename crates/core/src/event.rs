//! Core event vocabulary of the N-Server framework.
//!
//! The Reactor demultiplexes *reactive* events (I/O readiness, accepted
//! connections, timers); the Proactor emulation produces *completion*
//! events tagged with an Asynchronous Completion Token so the framework can
//! resume exactly the request that issued the blocking operation.

use std::fmt;

/// Identifier of an accepted connection, unique over the server lifetime.
pub type ConnId = u64;

/// Event priority for option O8. **Lower value = higher priority**
/// (level 0 is served first, subject to quotas).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(pub u8);

impl Priority {
    /// The highest priority level.
    pub const HIGHEST: Priority = Priority(0);

    /// Clamp a raw level into the configured number of levels.
    pub fn clamped(self, levels: usize) -> Priority {
        debug_assert!(levels >= 1);
        Priority(self.0.min((levels - 1) as u8))
    }

    /// Level index as usize.
    pub fn level(self) -> usize {
        self.0 as usize
    }
}

impl Default for Priority {
    fn default() -> Self {
        Priority::HIGHEST
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Asynchronous Completion Token (the ACT pattern, reference \[11\] of the
/// paper): pairs a connection with a per-connection sequence number so a
/// completion can be matched to the request that spawned it — and so
/// replies can be emitted in request order even when blocking operations
/// complete out of order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompletionToken {
    /// The connection the operation belongs to.
    pub conn: ConnId,
    /// Request sequence number within the connection.
    pub seq: u64,
}

impl fmt::Display for CompletionToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "act(conn={}, seq={})", self.conn, self.seq)
    }
}

/// The reactive event kinds the dispatcher produces. These are the events
/// that flow through the Event Processor queue (and are therefore what the
/// O8 scheduler reorders and the O9 watermark controller counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A new connection was accepted.
    Accepted,
    /// Request bytes arrived on a connection.
    Readable,
    /// A blocking operation completed (Proactor path).
    Completion,
    /// A timer fired.
    Timer,
    /// Framework shutdown.
    Shutdown,
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EventKind::Accepted => "accepted",
            EventKind::Readable => "readable",
            EventKind::Completion => "completion",
            EventKind::Timer => "timer",
            EventKind::Shutdown => "shutdown",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_orders_low_value_first() {
        assert!(Priority(0) < Priority(1));
        assert_eq!(Priority::default(), Priority::HIGHEST);
    }

    #[test]
    fn priority_clamps_to_levels() {
        assert_eq!(Priority(9).clamped(3), Priority(2));
        assert_eq!(Priority(1).clamped(3), Priority(1));
        assert_eq!(Priority(0).clamped(1), Priority(0));
    }

    #[test]
    fn token_identity() {
        let a = CompletionToken { conn: 3, seq: 7 };
        let b = CompletionToken { conn: 3, seq: 7 };
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "act(conn=3, seq=7)");
    }

    #[test]
    fn event_kind_display() {
        assert_eq!(EventKind::Readable.to_string(), "readable");
        assert_eq!(EventKind::Shutdown.to_string(), "shutdown");
    }
}
