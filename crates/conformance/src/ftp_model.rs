//! The executable FTP model: the COPS-FTP control-channel state machine
//! as a nondeterministic acceptor over reply blocks.
//!
//! Unlike HTTP, the FTP reply *bytes* are not a pure function of the
//! inbound stream — `STAT` bodies embed live server counters — so the
//! model accepts at the `(reply code, multiline?)` level: the decoded
//! command stream determines the exact sequence of reply codes, and a
//! conforming trace must realize a prefix of it (prefix closure again
//! covers faults cutting the stream anywhere).
//!
//! The model keeps its own login FSM, working directory and a *replica*
//! VFS seeded with the fixture content. Replaying the connection's own
//! `MKD`/`DELE` mutations against the replica keeps it exact as long as
//! schedules keep mutated paths disjoint across connections — which the
//! generator guarantees. `PASV` data transfers depend on out-of-band
//! state the control trace cannot see; the model marks the stream
//! unmodelable from that point and the checker stops there.

use std::sync::Arc;

use nserver_core::tap::ConnTrace;
use nserver_ftp::commands::Command;
use nserver_ftp::legacy::users::UserRegistry;
use nserver_ftp::legacy::vfs::{normalize, Vfs};
use nserver_ftp::observe::{extract_commands, split_replies, ReplyStreamEnd};
use nserver_ftp::FtpRequest;

use crate::Violation;

/// The fixture served in every FTP conformance run.
pub struct FtpFixture;

impl FtpFixture {
    fn populate(vfs: &Vfs) {
        vfs.mkdir("/pub");
        vfs.write("/pub/hello.txt", b"hello ftp".to_vec());
    }

    /// The live server's filesystem.
    pub fn vfs() -> Arc<Vfs> {
        let vfs = Arc::new(Vfs::new());
        Self::populate(&vfs);
        vfs
    }

    /// The live server's account registry: `anonymous` plus
    /// `alice`/`secret`.
    pub fn users() -> Arc<UserRegistry> {
        let users = Arc::new(UserRegistry::new().with_anonymous());
        users.add_user("alice", "secret");
        users
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum LoginState {
    Greeted,
    NeedPassword(String),
    LoggedIn,
}

/// What the model says about one decoded request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepResult {
    /// Expect this `(code, multiline)` reply; the session continues.
    Reply(u16, bool),
    /// Expect this reply, then the server closes (QUIT).
    Close(u16, bool),
    /// The session entered state the control trace cannot predict
    /// (a PASV data transfer); stop checking here.
    Unmodelable,
}

/// The per-connection specification machine.
pub struct FtpModel {
    state: LoginState,
    cwd: String,
    vfs: Vfs,
    users: Arc<UserRegistry>,
    pasv_pending: bool,
}

impl Default for FtpModel {
    fn default() -> Self {
        Self::new()
    }
}

impl FtpModel {
    /// A fresh session over a replica of the fixture.
    pub fn new() -> Self {
        let vfs = Vfs::new();
        FtpFixture::populate(&vfs);
        Self {
            state: LoginState::Greeted,
            cwd: "/".to_string(),
            vfs,
            users: FtpFixture::users(),
            pasv_pending: false,
        }
    }

    /// Advance the machine by one decoded request.
    pub fn step(&mut self, req: &FtpRequest) -> StepResult {
        use StepResult::{Close, Reply, Unmodelable};
        let cmd = match req {
            FtpRequest::Command(c) => c,
            FtpRequest::Malformed(_) => return Reply(500, false),
        };
        // Pre-login command set.
        match cmd {
            Command::User(name) => {
                if self.users.knows(name) {
                    self.state = LoginState::NeedPassword(name.clone());
                    return Reply(331, false);
                }
                self.state = LoginState::Greeted;
                return Reply(530, false);
            }
            Command::Pass(pw) => {
                let LoginState::NeedPassword(user) = self.state.clone() else {
                    return Reply(503, false);
                };
                if self.users.authenticate(&user, pw) {
                    self.state = LoginState::LoggedIn;
                    return Reply(230, false);
                }
                self.state = LoginState::Greeted;
                return Reply(530, false);
            }
            Command::Quit => return Close(221, false),
            Command::Syst => return Reply(215, false),
            Command::Noop => return Reply(200, false),
            Command::Unknown(_) => return Reply(502, false),
            _ => {}
        }
        if self.state != LoginState::LoggedIn {
            return Reply(530, false);
        }
        match cmd {
            Command::Pwd => Reply(257, false),
            Command::Cwd(dir) => match normalize(&self.cwd, dir) {
                Some(path) if self.vfs.is_dir(&path) => {
                    self.cwd = path;
                    Reply(250, false)
                }
                _ => Reply(550, false),
            },
            Command::Type(_) => Reply(200, false),
            Command::Mkd(dir) => match normalize(&self.cwd, dir) {
                Some(path) if self.vfs.mkdir(&path) => Reply(257, false),
                _ => Reply(550, false),
            },
            Command::Dele(file) => match normalize(&self.cwd, file) {
                Some(path) if self.vfs.delete(&path) => Reply(250, false),
                _ => Reply(550, false),
            },
            Command::Size(file) => match normalize(&self.cwd, file).and_then(|p| self.vfs.size(&p))
            {
                Some(_) => Reply(213, false),
                None => Reply(550, false),
            },
            Command::Stat(None) => Reply(211, true),
            Command::Stat(Some(p)) => match normalize(&self.cwd, p) {
                Some(t) if self.vfs.is_dir(&t) || self.vfs.size(&t).is_some() => Reply(211, true),
                _ => Reply(550, false),
            },
            Command::SiteDump => Reply(211, true),
            Command::Pasv => {
                self.pasv_pending = true;
                Reply(227, false)
            }
            Command::List(_) => {
                if !self.pasv_pending {
                    Reply(503, false)
                } else {
                    Unmodelable
                }
            }
            Command::Retr(file) | Command::Stor(file) => {
                if !self.pasv_pending {
                    Reply(503, false)
                } else {
                    // The listener is consumed even when the path check
                    // fails afterwards.
                    self.pasv_pending = false;
                    if normalize(&self.cwd, file).is_none() {
                        Reply(550, false)
                    } else {
                        Unmodelable
                    }
                }
            }
            Command::User(_)
            | Command::Pass(_)
            | Command::Quit
            | Command::Syst
            | Command::Noop
            | Command::Unknown(_) => unreachable!("handled before the login gate"),
        }
    }
}

/// The expected `(code, multiline)` reply sequence for `inbound`,
/// starting with the 220 greeting. The boolean is false when the session
/// became unmodelable (PASV transfer) — the sequence then covers only the
/// prefix up to that point, and strict checking must be skipped.
pub fn expected_replies(inbound: &[u8]) -> (Vec<(u16, bool)>, bool) {
    let mut model = FtpModel::new();
    let mut expected = vec![(220, false)];
    for req in &extract_commands(inbound).requests {
        match model.step(req) {
            StepResult::Reply(code, multi) => expected.push((code, multi)),
            StepResult::Close(code, multi) => {
                expected.push((code, multi));
                break;
            }
            StepResult::Unmodelable => return (expected, false),
        }
    }
    (expected, true)
}

/// Check one control-connection trace against the model.
pub fn check_ftp(trace: &ConnTrace, strict: bool) -> Vec<Violation> {
    let mut violations = Vec::new();
    if let Some(v) = crate::event_order_violation(trace) {
        violations.push(v);
    }
    let (expected, modelable) = expected_replies(&trace.inbound());
    let observed = split_replies(&trace.outbound());
    let vio = |kind, detail| Violation {
        accept_index: trace.accept_index,
        profile: trace.profile.clone(),
        kind,
        detail,
    };
    for (i, block) in observed.complete.iter().enumerate() {
        let Some(&(code, multi)) = expected.get(i) else {
            if modelable {
                violations.push(vio(
                    "excess-reply",
                    format!(
                        "reply {} ({} {:?}) past the {} the model allows",
                        i,
                        block.code,
                        block.text,
                        expected.len()
                    ),
                ));
            }
            break;
        };
        if (block.code, block.multiline) != (code, multi) {
            violations.push(vio(
                "reply-mismatch",
                format!(
                    "reply {}: got {}{} {:?}, model expects {}{}",
                    i,
                    block.code,
                    if block.multiline { "-" } else { "" },
                    block.text,
                    code,
                    if multi { "-" } else { "" },
                ),
            ));
            break;
        }
    }
    if let ReplyStreamEnd::Malformed { offset, ref why } = observed.end {
        violations.push(vio(
            "malformed-replies",
            format!("outbound unparseable as FTP replies at +{offset}: {why}"),
        ));
    }
    if strict
        && modelable
        && violations.is_empty()
        && (observed.complete.len() != expected.len() || observed.end != ReplyStreamEnd::Clean)
    {
        violations.push(vio(
            "incomplete-delivery",
            format!(
                "clean session delivered {} of {} expected replies (end: {:?})",
                observed.complete.len(),
                expected.len(),
                observed.end,
            ),
        ));
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use nserver_core::tap::TapEvent;

    fn seq(inbound: &str) -> Vec<(u16, bool)> {
        expected_replies(inbound.as_bytes()).0
    }

    #[test]
    fn login_flow_codes() {
        assert_eq!(
            seq("USER alice\r\nPASS secret\r\nPWD\r\nQUIT\r\n"),
            vec![
                (220, false),
                (331, false),
                (230, false),
                (257, false),
                (221, false)
            ]
        );
    }

    #[test]
    fn wrong_password_resets_the_fsm() {
        assert_eq!(
            seq("USER alice\r\nPASS wrong\r\nPASS secret\r\n"),
            vec![(220, false), (331, false), (530, false), (503, false)]
        );
    }

    #[test]
    fn login_gate_and_pre_login_commands() {
        assert_eq!(
            seq("PWD\r\nSYST\r\nNOOP\r\nXYZZY\r\n"),
            vec![
                (220, false),
                (530, false),
                (215, false),
                (200, false),
                (502, false)
            ]
        );
    }

    #[test]
    fn commands_after_quit_are_dead() {
        assert_eq!(
            seq("QUIT\r\nSYST\r\n"),
            vec![(220, false), (221, false)],
            "the server closes on QUIT"
        );
    }

    #[test]
    fn replica_vfs_tracks_own_mutations() {
        let replies =
            seq("USER alice\r\nPASS secret\r\nMKD /inbox\r\nMKD /inbox\r\nCWD /inbox\r\nSTAT\r\n");
        assert_eq!(
            &replies[3..],
            &[(257, false), (550, false), (250, false), (211, true)]
        );
    }

    #[test]
    fn transfers_without_pasv_are_503_and_pasv_makes_them_unmodelable() {
        assert_eq!(
            seq("USER alice\r\nPASS secret\r\nLIST\r\nRETR /pub/hello.txt\r\n"),
            vec![
                (220, false),
                (331, false),
                (230, false),
                (503, false),
                (503, false)
            ]
        );
        let (expected, modelable) =
            expected_replies(b"USER alice\r\nPASS secret\r\nPASV\r\nLIST\r\n");
        assert!(!modelable);
        assert_eq!(expected.last(), Some(&(227, false)));
    }

    #[test]
    fn check_accepts_prefix_and_catches_wrong_code() {
        let inbound = b"USER alice\r\nPASS secret\r\n";
        let good = ConnTrace {
            accept_index: 1,
            peer: "peer-1".into(),
            profile: "Clean".into(),
            events: vec![
                TapEvent::Read(inbound.to_vec()),
                TapEvent::Wrote(b"220 ready\r\n331 need password\r\n".to_vec()),
            ],
        };
        assert!(check_ftp(&good, false).is_empty());
        assert_eq!(
            check_ftp(&good, true)[0].kind,
            "incomplete-delivery",
            "strict wants the 230 too"
        );
        let bad = ConnTrace {
            events: vec![
                TapEvent::Read(inbound.to_vec()),
                TapEvent::Wrote(b"220 ready\r\n230 logged in\r\n".to_vec()),
            ],
            ..good
        };
        assert_eq!(check_ftp(&bad, false)[0].kind, "reply-mismatch");
    }
}
