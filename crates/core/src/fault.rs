//! Deterministic fault injection for the transport layer.
//!
//! The paper evaluates the N-Server pattern under *load* (Figs. 4–6) but
//! never under *failure*: peer resets, `WouldBlock` storms, short
//! reads/writes, corrupted request bytes, accept-time errors and
//! slow-loris stalls. This module supplies those failures as a wrapper
//! around any [`Listener`]/[`StreamIo`]/[`Poller`] triple, so the same
//! framework assembly the clean tests exercise can be driven through a
//! seeded *fault plan* — and the chaos suite in `tests/` can assert the
//! server survives, sheds load and returns to steady state.
//!
//! Everything is deterministic: a [`FaultPlan`] is a seed plus per-mille
//! incidence knobs, and the fault profile of the `k`-th accepted
//! connection is a pure function of `(seed, k)`. Two runs with the same
//! plan inject byte-identical fault schedules.
//!
//! The injection sits *below* the framework (between the reactor and the
//! real transport), so the hardened paths it exercises — error accounting
//! in the dispatcher, stage deadlines, accept-error recovery — are the
//! exact production code paths, not test doubles.

use std::collections::HashMap;
use std::io;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::transport::{Interest, Listener, PollEvent, Poller, ReadOutcome, StreamIo, Waker};

/// A seeded, declarative schedule of transport faults.
///
/// Each `*_per_mille` knob is the per-connection incidence (out of 1000)
/// of one fault family; the families are rolled in a fixed order, so the
/// knobs partition the probability space. `accept_fail_every` injects an
/// accept-time error on every `n`-th accept. `faulty_first` restricts all
/// injection to the first `n` accepted connections (0 = no restriction) —
/// the chaos suite uses it to assert recovery: connections accepted after
/// the fault window must be served cleanly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for the deterministic profile derivation.
    pub seed: u64,
    /// Incidence of connection resets mid-stream (‰).
    pub reset_per_mille: u16,
    /// Incidence of `WouldBlock` storms (‰).
    pub storm_per_mille: u16,
    /// Incidence of short-read/short-write capping (‰).
    pub short_io_per_mille: u16,
    /// Incidence of inbound byte corruption (‰).
    pub corrupt_per_mille: u16,
    /// Incidence of slow-loris stalls (‰).
    pub stall_per_mille: u16,
    /// Fail every `n`-th accept with an error (0 = never).
    pub accept_fail_every: u32,
    /// Only the first `n` accepted connections draw faults (0 = all).
    pub faulty_first: u32,
}

impl FaultPlan {
    /// An all-quiet plan with the given seed; switch faults on by setting
    /// the incidence fields.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    fn in_window(&self, accept_index: u64) -> bool {
        self.faulty_first == 0 || accept_index <= self.faulty_first as u64
    }

    /// Whether the `accept_index`-th accept (1-based) fails.
    pub fn accept_fails(&self, accept_index: u64) -> bool {
        self.accept_fail_every > 0
            && self.in_window(accept_index)
            && accept_index.is_multiple_of(self.accept_fail_every as u64)
    }

    /// The fault profile of the `accept_index`-th accepted connection —
    /// a pure function of `(seed, accept_index)`.
    pub fn profile_for(&self, accept_index: u64) -> FaultProfile {
        if !self.in_window(accept_index) {
            return FaultProfile::Clean;
        }
        let mut rng = FaultRng::new(self.seed, accept_index);
        let roll = (rng.next() % 1000) as u16;
        let mut edge = self.reset_per_mille;
        if roll < edge {
            return FaultProfile::Reset {
                after_bytes: 1 + (rng.next() % 256) as usize,
            };
        }
        edge = edge.saturating_add(self.storm_per_mille);
        if roll < edge {
            return FaultProfile::Storm {
                calls: 3 + (rng.next() % 6) as u32,
            };
        }
        edge = edge.saturating_add(self.short_io_per_mille);
        if roll < edge {
            return FaultProfile::ShortIo {
                cap: 1 + (rng.next() % 7) as usize,
            };
        }
        edge = edge.saturating_add(self.corrupt_per_mille);
        if roll < edge {
            return FaultProfile::Corrupt {
                every: 2 + (rng.next() % 6) as usize,
            };
        }
        edge = edge.saturating_add(self.stall_per_mille);
        if roll < edge {
            return FaultProfile::Stall {
                after_bytes: (rng.next() % 16) as usize,
            };
        }
        FaultProfile::Clean
    }
}

/// The per-connection fault behaviour drawn from a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultProfile {
    /// No injected faults.
    Clean,
    /// After `after_bytes` total bytes (read + written), every I/O call
    /// fails with `ConnectionReset`.
    Reset {
        /// Traffic threshold that trips the reset.
        after_bytes: usize,
    },
    /// The first `calls` read attempts report `WouldBlock` even when data
    /// is queued; the swallowed readiness is redelivered synthetically by
    /// [`FaultyPoller`].
    Storm {
        /// Number of suppressed read attempts.
        calls: u32,
    },
    /// Reads and writes are capped at `cap` bytes, and every other write
    /// attempt reports would-block — forcing the caller to resume a
    /// partially written response from the correct offset.
    ShortIo {
        /// Per-call byte cap.
        cap: usize,
    },
    /// Every `every`-th inbound byte is bit-flipped — a malformed request
    /// the codec must reject.
    Corrupt {
        /// Corruption stride in bytes.
        every: usize,
    },
    /// Slow-loris: after `after_bytes` inbound bytes the connection goes
    /// silent forever (reads report `WouldBlock`, data is withheld), so
    /// only a stage deadline or idle sweep can reclaim it.
    Stall {
        /// Bytes delivered before the permanent stall.
        after_bytes: usize,
    },
}

/// SplitMix64 over `(seed, stream)` — local so `nserver-core` stays free
/// of a simulator dependency; `nserver-netsim` has the fuller [`SimRng`]
/// twin of this generator.
///
/// [`SimRng`]: https://docs.rs/
struct FaultRng(u64);

impl FaultRng {
    fn new(seed: u64, stream: u64) -> Self {
        Self(seed ^ stream.wrapping_mul(0x9E3779B97F4A7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Mutable fault bookkeeping, shared between a [`FaultyStream`] and the
/// [`FaultyPoller`] watching it (the poller needs to see swallowed
/// readiness to redeliver it).
#[derive(Debug)]
struct FaultState {
    profile: FaultProfile,
    bytes_read: usize,
    bytes_written: usize,
    storm_left: u32,
    /// ShortIo: alternates "write allowed" / "would-block" per call.
    write_gate_open: bool,
    /// A readable event was swallowed (storm); the poller must re-report
    /// the token or the notification-based mem transport loses it forever.
    suppressed: bool,
}

/// A [`StreamIo`] wrapper injecting one connection's [`FaultProfile`].
pub struct FaultyStream<S: StreamIo> {
    inner: S,
    state: Arc<Mutex<FaultState>>,
}

impl<S: StreamIo> std::fmt::Debug for FaultyStream<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyStream")
            .field("peer", &self.inner.peer_label())
            .field("state", &*self.state.lock())
            .finish()
    }
}

impl<S: StreamIo> FaultyStream<S> {
    /// Wrap a stream with the given profile.
    pub fn new(inner: S, profile: FaultProfile) -> Self {
        let storm_left = match profile {
            FaultProfile::Storm { calls } => calls,
            _ => 0,
        };
        Self {
            inner,
            state: Arc::new(Mutex::new(FaultState {
                profile,
                bytes_read: 0,
                bytes_written: 0,
                storm_left,
                write_gate_open: false,
                suppressed: false,
            })),
        }
    }

    /// The profile this stream runs under.
    pub fn profile(&self) -> FaultProfile {
        self.state.lock().profile
    }
}

impl<S: StreamIo> StreamIo for FaultyStream<S> {
    fn try_read(&mut self, buf: &mut [u8]) -> io::Result<ReadOutcome> {
        if buf.is_empty() {
            return self.inner.try_read(buf);
        }
        let mut st = self.state.lock();
        match st.profile {
            FaultProfile::Clean => self.inner.try_read(buf),
            FaultProfile::Reset { after_bytes } => {
                if st.bytes_read + st.bytes_written >= after_bytes {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        "injected reset",
                    ));
                }
                let r = self.inner.try_read(buf)?;
                if let ReadOutcome::Data(n) = r {
                    st.bytes_read += n;
                }
                Ok(r)
            }
            FaultProfile::Storm { .. } => {
                if st.storm_left > 0 {
                    st.storm_left -= 1;
                    st.suppressed = true;
                    return Ok(ReadOutcome::WouldBlock);
                }
                self.inner.try_read(buf)
            }
            FaultProfile::ShortIo { cap } => {
                let cap = cap.clamp(1, buf.len());
                self.inner.try_read(&mut buf[..cap])
            }
            FaultProfile::Corrupt { every } => {
                let r = self.inner.try_read(buf)?;
                if let ReadOutcome::Data(n) = r {
                    for (i, byte) in buf[..n].iter_mut().enumerate() {
                        if (st.bytes_read + i + 1).is_multiple_of(every) {
                            *byte ^= 0xFF;
                        }
                    }
                    st.bytes_read += n;
                }
                Ok(r)
            }
            FaultProfile::Stall { after_bytes } => {
                if st.bytes_read >= after_bytes {
                    // Gone silent: data (if any) is withheld and no
                    // synthetic redelivery is requested — only a deadline
                    // can reclaim this connection.
                    return Ok(ReadOutcome::WouldBlock);
                }
                let cap = (after_bytes - st.bytes_read).clamp(1, buf.len());
                let r = self.inner.try_read(&mut buf[..cap])?;
                if let ReadOutcome::Data(n) = r {
                    st.bytes_read += n;
                }
                Ok(r)
            }
        }
    }

    fn try_write(&mut self, data: &[u8]) -> io::Result<usize> {
        let mut st = self.state.lock();
        match st.profile {
            FaultProfile::Reset { after_bytes } => {
                if st.bytes_read + st.bytes_written >= after_bytes {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        "injected reset",
                    ));
                }
                let n = self.inner.try_write(data)?;
                st.bytes_written += n;
                Ok(n)
            }
            FaultProfile::ShortIo { cap } => {
                if data.is_empty() {
                    return self.inner.try_write(data);
                }
                // Alternate would-block and a capped write, so a response
                // is forced across multiple poll iterations and the caller
                // must resume from its offset bookkeeping.
                if !st.write_gate_open {
                    st.write_gate_open = true;
                    return Ok(0);
                }
                st.write_gate_open = false;
                let cap = cap.clamp(1, data.len());
                let n = self.inner.try_write(&data[..cap])?;
                st.bytes_written += n;
                Ok(n)
            }
            _ => {
                let n = self.inner.try_write(data)?;
                st.bytes_written += n;
                Ok(n)
            }
        }
    }

    fn peer_label(&self) -> String {
        self.inner.peer_label()
    }

    fn shutdown(&mut self) {
        self.inner.shutdown();
    }

    fn shutdown_write(&mut self) {
        // Fault profiles shape data flow, not teardown: half-close passes
        // straight through, like `shutdown`.
        self.inner.shutdown_write();
    }
}

/// A [`Poller`] wrapper that redelivers readiness swallowed by fault
/// injection.
///
/// The in-memory transport is notification-based: if a `WouldBlock` storm
/// swallows a readable event, nothing will ever re-notify the token and
/// the connection wedges — a test artifact, not the failure under study.
/// The wrapper therefore re-reports any token whose stream suppressed a
/// readable event, capping the wait timeout so redelivery is prompt.
pub struct FaultyPoller<P: Poller> {
    inner: P,
    states: HashMap<u64, Arc<Mutex<FaultState>>>,
}

/// How quickly suppressed readiness is re-reported.
const REDELIVER_INTERVAL: Duration = Duration::from_millis(1);

impl<P: Poller> Poller for FaultyPoller<P> {
    type Stream = FaultyStream<P::Stream>;

    fn register(
        &mut self,
        token: u64,
        stream: &Self::Stream,
        interest: Interest,
    ) -> io::Result<()> {
        self.inner.register(token, &stream.inner, interest)?;
        self.states.insert(token, Arc::clone(&stream.state));
        Ok(())
    }

    fn reregister(
        &mut self,
        token: u64,
        stream: &Self::Stream,
        interest: Interest,
    ) -> io::Result<()> {
        self.inner.reregister(token, &stream.inner, interest)?;
        self.states.insert(token, Arc::clone(&stream.state));
        Ok(())
    }

    fn deregister(&mut self, token: u64, stream: &Self::Stream) -> io::Result<()> {
        self.states.remove(&token);
        self.inner.deregister(token, &stream.inner)
    }

    fn wait(&mut self, events: &mut Vec<PollEvent>, timeout: Option<Duration>) -> io::Result<()> {
        let mut capped = timeout;
        if self.states.values().any(|s| s.lock().suppressed) {
            capped = Some(capped.map_or(REDELIVER_INTERVAL, |t| t.min(REDELIVER_INTERVAL)));
        }
        self.inner.wait(events, capped)?;
        for (&token, state) in &self.states {
            let mut st = state.lock();
            if st.suppressed {
                st.suppressed = false;
                if !events.iter().any(|e| e.token == token && e.readable) {
                    events.push(PollEvent {
                        token,
                        readable: true,
                        writable: false,
                    });
                }
            }
        }
        Ok(())
    }

    fn waker(&self) -> Waker {
        self.inner.waker()
    }
}

/// A [`Listener`] wrapper that stamps every accepted connection with its
/// planned [`FaultProfile`] and injects accept-time failures.
pub struct FaultyListener<L: Listener> {
    inner: L,
    plan: FaultPlan,
    accepted: u64,
}

impl<L: Listener> FaultyListener<L> {
    /// Wrap a listener under the given plan.
    pub fn new(inner: L, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            accepted: 0,
        }
    }

    /// Connections accepted so far (including failed accepts).
    pub fn accepted(&self) -> u64 {
        self.accepted
    }
}

impl<L: Listener> Listener for FaultyListener<L> {
    type Stream = FaultyStream<L::Stream>;
    type Poller = FaultyPoller<L::Poller>;

    fn try_accept(&mut self) -> io::Result<Option<Self::Stream>> {
        let Some(stream) = self.inner.try_accept()? else {
            return Ok(None);
        };
        self.accepted += 1;
        if self.plan.accept_fails(self.accepted) {
            // The connection is consumed (and closed), not left queued:
            // an accept-time failure must not wedge the listener backlog.
            let mut stream = stream;
            stream.shutdown();
            return Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "injected accept failure",
            ));
        }
        let profile = self.plan.profile_for(self.accepted);
        Ok(Some(FaultyStream::new(stream, profile)))
    }

    fn local_label(&self) -> String {
        self.inner.local_label()
    }

    fn new_poller() -> io::Result<Self::Poller> {
        Ok(FaultyPoller {
            inner: L::new_poller()?,
            states: HashMap::new(),
        })
    }

    fn register_listener(&self, poller: &mut Self::Poller) -> io::Result<()> {
        self.inner.register_listener(&mut poller.inner)
    }

    fn deregister_listener(&self, poller: &mut Self::Poller) -> io::Result<()> {
        self.inner.deregister_listener(&mut poller.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::mem;
    use bytes::BytesMut;

    fn all_of(plan: &FaultPlan, n: u64) -> Vec<FaultProfile> {
        (1..=n).map(|i| plan.profile_for(i)).collect()
    }

    #[test]
    fn profiles_are_deterministic_per_seed() {
        let plan = FaultPlan {
            seed: 42,
            reset_per_mille: 200,
            storm_per_mille: 200,
            short_io_per_mille: 200,
            corrupt_per_mille: 200,
            stall_per_mille: 200,
            ..FaultPlan::default()
        };
        assert_eq!(all_of(&plan, 200), all_of(&plan, 200));
        let other = FaultPlan { seed: 43, ..plan };
        assert_ne!(all_of(&plan, 200), all_of(&other, 200));
        // Every family is actually drawn at these incidences.
        let drawn = all_of(&plan, 200);
        assert!(drawn
            .iter()
            .any(|p| matches!(p, FaultProfile::Reset { .. })));
        assert!(drawn
            .iter()
            .any(|p| matches!(p, FaultProfile::Storm { .. })));
        assert!(drawn
            .iter()
            .any(|p| matches!(p, FaultProfile::ShortIo { .. })));
        assert!(drawn
            .iter()
            .any(|p| matches!(p, FaultProfile::Corrupt { .. })));
        assert!(drawn
            .iter()
            .any(|p| matches!(p, FaultProfile::Stall { .. })));
    }

    #[test]
    fn saturated_incidence_always_faults_and_zero_never_does() {
        let always = FaultPlan {
            seed: 7,
            reset_per_mille: 1000,
            ..FaultPlan::default()
        };
        assert!(all_of(&always, 50)
            .iter()
            .all(|p| matches!(p, FaultProfile::Reset { .. })));
        let never = FaultPlan::new(7);
        assert!(all_of(&never, 50).iter().all(|p| *p == FaultProfile::Clean));
    }

    #[test]
    fn faulty_first_window_bounds_injection() {
        let plan = FaultPlan {
            seed: 1,
            reset_per_mille: 1000,
            accept_fail_every: 2,
            faulty_first: 10,
            ..FaultPlan::default()
        };
        assert!(matches!(plan.profile_for(10), FaultProfile::Reset { .. }));
        assert_eq!(plan.profile_for(11), FaultProfile::Clean);
        assert!(plan.accept_fails(10));
        assert!(!plan.accept_fails(12), "outside the fault window");
    }

    #[test]
    fn short_writes_resume_from_the_correct_offset() {
        // The satellite audit: a partial write mid-response must resume
        // from where it stopped, neither dropping nor re-sending bytes.
        // This drives the same BytesMut::split_to bookkeeping the
        // dispatcher's flush path uses.
        let (server_side, mut client) = mem::pair("srv", "cli");
        let mut faulty = FaultyStream::new(server_side, FaultProfile::ShortIo { cap: 3 });

        let payload: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let mut outbox = BytesMut::from(&payload[..]);
        let mut would_blocks = 0;
        while !outbox.is_empty() {
            match faulty.try_write(&outbox).unwrap() {
                0 => would_blocks += 1,
                n => {
                    assert!(n <= 3, "cap respected");
                    let _ = outbox.split_to(n);
                }
            }
            assert!(would_blocks < 10_000, "no forward progress");
        }
        assert!(would_blocks > 0, "short-io must interleave would-blocks");

        let mut got = Vec::new();
        let mut buf = [0u8; 256];
        loop {
            match client.try_read(&mut buf).unwrap() {
                ReadOutcome::Data(n) => got.extend_from_slice(&buf[..n]),
                ReadOutcome::WouldBlock => break,
                ReadOutcome::Closed => break,
            }
        }
        assert_eq!(
            got, payload,
            "bytes dropped or duplicated across short writes"
        );
    }

    #[test]
    fn short_reads_are_capped_but_lossless() {
        let (mut writer, reader) = mem::pair("w", "r");
        writer.try_write(b"hello world").unwrap();
        let mut faulty = FaultyStream::new(reader, FaultProfile::ShortIo { cap: 2 });
        let mut got = Vec::new();
        let mut buf = [0u8; 64];
        while let ReadOutcome::Data(n) = faulty.try_read(&mut buf).unwrap() {
            assert!(n <= 2);
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(got, b"hello world");
    }

    #[test]
    fn reset_trips_after_traffic_threshold() {
        let (mut writer, reader) = mem::pair("w", "r");
        writer.try_write(&[0u8; 64]).unwrap();
        let mut faulty = FaultyStream::new(reader, FaultProfile::Reset { after_bytes: 10 });
        let mut buf = [0u8; 8];
        assert!(matches!(
            faulty.try_read(&mut buf).unwrap(),
            ReadOutcome::Data(8)
        ));
        assert!(matches!(
            faulty.try_read(&mut buf).unwrap(),
            ReadOutcome::Data(_)
        ));
        let err = faulty.try_read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert_eq!(
            faulty.try_write(b"x").unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
    }

    #[test]
    fn corruption_flips_every_nth_inbound_byte() {
        let (mut writer, reader) = mem::pair("w", "r");
        writer.try_write(&[0u8; 12]).unwrap();
        let mut faulty = FaultyStream::new(reader, FaultProfile::Corrupt { every: 4 });
        let mut buf = [0u8; 12];
        // Read in two chunks: the corruption stride must span calls.
        assert!(matches!(
            faulty.try_read(&mut buf[..6]).unwrap(),
            ReadOutcome::Data(6)
        ));
        let first = buf[..6].to_vec();
        assert!(matches!(
            faulty.try_read(&mut buf[..6]).unwrap(),
            ReadOutcome::Data(6)
        ));
        let mut got = first;
        got.extend_from_slice(&buf[..6]);
        let expect: Vec<u8> = (1..=12u8)
            .map(|i| if i % 4 == 0 { 0xFF } else { 0x00 })
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn storm_suppresses_then_delivers_and_flags_redelivery() {
        let (mut writer, reader) = mem::pair("w", "r");
        writer.try_write(b"abc").unwrap();
        let mut faulty = FaultyStream::new(reader, FaultProfile::Storm { calls: 3 });
        let mut buf = [0u8; 8];
        for _ in 0..3 {
            assert!(matches!(
                faulty.try_read(&mut buf).unwrap(),
                ReadOutcome::WouldBlock
            ));
            assert!(faulty.state.lock().suppressed);
        }
        assert!(matches!(
            faulty.try_read(&mut buf).unwrap(),
            ReadOutcome::Data(3)
        ));
    }

    #[test]
    fn stall_goes_permanently_silent_after_threshold() {
        let (mut writer, reader) = mem::pair("w", "r");
        writer.try_write(b"abcdef").unwrap();
        let mut faulty = FaultyStream::new(reader, FaultProfile::Stall { after_bytes: 4 });
        let mut got = Vec::new();
        let mut buf = [0u8; 8];
        for _ in 0..4 {
            if let ReadOutcome::Data(n) = faulty.try_read(&mut buf).unwrap() {
                got.extend_from_slice(&buf[..n]);
            }
        }
        assert_eq!(got, b"abcd");
        for _ in 0..5 {
            assert!(matches!(
                faulty.try_read(&mut buf).unwrap(),
                ReadOutcome::WouldBlock
            ));
        }
        assert!(
            !faulty.state.lock().suppressed,
            "stalls are not redelivered"
        );
    }

    #[test]
    fn accept_failure_consumes_and_closes_the_connection() {
        let (listener, connector) = mem::listener("chaos");
        let mut faulty = FaultyListener::new(
            listener,
            FaultPlan {
                seed: 3,
                accept_fail_every: 2,
                ..FaultPlan::default()
            },
        );
        let _c1 = connector.connect();
        let mut c2 = connector.connect();
        assert!(faulty.try_accept().unwrap().is_some());
        let err = faulty.try_accept().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionAborted);
        assert_eq!(faulty.accepted(), 2);
        // The victim's client side observes the close.
        let mut buf = [0u8; 4];
        assert!(matches!(
            c2.try_read(&mut buf).unwrap(),
            ReadOutcome::Closed
        ));
        // The listener keeps accepting afterwards.
        let _c3 = connector.connect();
        assert!(faulty.try_accept().unwrap().is_some());
    }

    #[test]
    fn faulty_poller_redelivers_suppressed_readiness() {
        let (listener, connector) = mem::listener("storm");
        let mut faulty_listener = FaultyListener::new(
            listener,
            FaultPlan {
                seed: 9,
                storm_per_mille: 1000,
                ..FaultPlan::default()
            },
        );
        let mut poller = FaultyListener::<mem::MemListener>::new_poller().expect("poller");
        let mut client = connector.connect();
        client.try_write(b"ping\n").unwrap();
        let mut server_stream = faulty_listener.try_accept().unwrap().unwrap();
        poller
            .register(7, &server_stream, Interest::READABLE)
            .unwrap();

        let mut events = Vec::new();
        let mut buf = [0u8; 16];
        let mut delivered = Vec::new();
        // Each wait → swallowed read → synthetic redelivery next wait,
        // until the storm is exhausted and the data arrives.
        for _ in 0..32 {
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            if events.iter().any(|e| e.token == 7 && e.readable) {
                if let ReadOutcome::Data(n) = server_stream.try_read(&mut buf).unwrap() {
                    delivered.extend_from_slice(&buf[..n]);
                    break;
                }
            }
        }
        assert_eq!(delivered, b"ping\n", "storm starved the connection forever");
    }
}
