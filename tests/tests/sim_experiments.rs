//! Scaled-down runs of the four figure-level experiments, asserting the
//! *shapes* the paper reports. The full harnesses live in
//! `crates/bench/src/bin`; these tests keep the shapes from regressing.

use nserver_baselines::world::CopsParams;
use nserver_baselines::{
    run_scheduling_experiment, ApacheParams, ExperimentParams, SchedulingParams, ServerKind, World,
};
use nserver_netsim::SimTime;

fn short3(clients: usize, kind: ServerKind) -> ExperimentParams {
    let mut p = ExperimentParams::figure3(clients, kind);
    p.warmup = SimTime::from_secs(5);
    p.measure = SimTime::from_secs(25);
    p
}

#[test]
fn fig3_shape_crossover_and_saturation() {
    let apache = |n| World::new(short3(n, ServerKind::Apache(ApacheParams::default()))).run();
    let cops = |n| World::new(short3(n, ServerKind::Cops(CopsParams::default()))).run();

    // Light load: Apache at least as good (C vs Java per-request cost).
    let (a8, c8) = (apache(8), cops(8));
    assert!(
        a8.throughput_rps >= c8.throughput_rps * 0.995,
        "light load: apache {} vs cops {}",
        a8.throughput_rps,
        c8.throughput_rps
    );

    // Mid load: COPS ahead (multiprogramming overhead bites Apache).
    let (a128, c128) = (apache(128), cops(128));
    assert!(
        c128.throughput_rps > a128.throughput_rps * 1.02,
        "mid load: apache {} vs cops {}",
        a128.throughput_rps,
        c128.throughput_rps
    );

    // Heavy load: both saturate; COPS's saturation exceeds Apache's.
    let (a512, c512) = (apache(512), cops(512));
    assert!(c512.throughput_rps > a512.throughput_rps);
    // Very heavy (1024): Apache regains the lead (it serves only its 150
    // lucky connections), at the price Fig. 4 shows.
    let (a1024, c1024) = (apache(1024), cops(1024));
    assert!(
        a1024.throughput_rps > c1024.throughput_rps,
        "1024: apache {} vs cops {}",
        a1024.throughput_rps,
        c1024.throughput_rps
    );
}

#[test]
fn fig4_shape_fairness_collapse() {
    let apache = World::new(short3(1024, ServerKind::Apache(ApacheParams::default()))).run();
    let cops = World::new(short3(1024, ServerKind::Cops(CopsParams::default()))).run();
    assert!(cops.fairness > 0.95, "cops fairness {}", cops.fairness);
    assert!(
        apache.fairness < 0.7,
        "apache fairness {} should collapse at 1024 clients",
        apache.fairness
    );
    // The collapse is caused by SYN drops + exponential backoff.
    assert!(apache.syn_drops > 100);
    // At light load both are fair.
    let apache_light = World::new(short3(64, ServerKind::Apache(ApacheParams::default()))).run();
    assert!(apache_light.fairness > 0.95);
}

#[test]
fn fig5_shape_quota_ratio_controls_throughput_ratio() {
    let mut p = SchedulingParams::paper(1, 5);
    p.warmup = SimTime::from_secs(2);
    p.measure = SimTime::from_secs(20);
    let out = run_scheduling_experiment(p);
    let ratio = out.ratio();
    assert!((3.7..6.3).contains(&ratio), "5:1 quotas gave ratio {ratio}");
    assert!(out.portal_rps > out.homepage_rps);
}

#[test]
fn fig6_shape_overload_control_bounds_response_time() {
    let run = |clients, ctl| {
        let mut p = ExperimentParams::figure6(clients, ctl);
        p.warmup = SimTime::from_secs(5);
        p.measure = SimTime::from_secs(25);
        World::new(p).run()
    };
    let off64 = run(64, false);
    let on64 = run(64, true);
    // Controlled response time is significantly lower...
    assert!(on64.mean_response_ms < off64.mean_response_ms * 0.6);
    // ...throughput is not degraded...
    assert!(on64.throughput_rps > off64.throughput_rps * 0.9);
    // ...and the combined time reflects the connect wait instead.
    assert!(on64.mean_combined_ms > on64.mean_response_ms);

    // Response time without control grows with load; with control it
    // stays roughly flat.
    let off16 = run(16, false);
    let on16 = run(16, true);
    assert!(off64.mean_response_ms > off16.mean_response_ms * 2.0);
    assert!(on64.mean_response_ms < on16.mean_response_ms * 1.5);
}
