//! Access logging for COPS-HTTP (template option O12): NCSA Common Log
//! Format lines, fed to whatever sink the framework's logging hook was
//! given.

use crate::types::{Request, Response};

/// Render one Common Log Format line:
/// `host ident authuser [timestamp] "request line" status bytes`.
///
/// The timestamp is supplied by the caller (seconds since the epoch) so
/// the formatter stays pure and testable.
pub fn clf_line(peer: &str, epoch_secs: u64, req: &Request, resp: &Response) -> String {
    let host = peer.split(':').next().unwrap_or(peer);
    format!(
        "{host} - - [{epoch_secs}] \"{} {} {}\" {} {}",
        req.method,
        req.target,
        req.version,
        resp.status.code(),
        if resp.head_only { 0 } else { resp.body.len() }
    )
}

/// Convenience: a CLF line stamped with the current system time.
pub fn clf_line_now(peer: &str, req: &Request, resp: &Response) -> String {
    let epoch = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    clf_line(peer, epoch, req, resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Headers, Method, Status, Version};
    use std::sync::Arc;

    fn req() -> Request {
        Request {
            method: Method::Get,
            target: "/index.html".into(),
            version: Version::Http11,
            headers: Headers::new(),
        }
    }

    #[test]
    fn clf_line_has_all_fields() {
        let resp = Response::ok(Arc::new(vec![0u8; 1234]), "text/html", Version::Http11);
        let line = clf_line("10.0.0.7:51234", 1000000, &req(), &resp);
        assert_eq!(
            line,
            "10.0.0.7 - - [1000000] \"GET /index.html HTTP/1.1\" 200 1234"
        );
    }

    #[test]
    fn head_responses_log_zero_bytes() {
        let resp = Response::ok(Arc::new(vec![0u8; 1234]), "text/html", Version::Http11).head();
        let line = clf_line("h:1", 5, &req(), &resp);
        assert!(line.ends_with("200 0"), "{line}");
    }

    #[test]
    fn error_status_is_logged() {
        let resp = Response::error(Status::NotFound, Version::Http10);
        let line = clf_line("h:1", 5, &req(), &resp);
        assert!(line.contains("\" 404 "), "{line}");
    }

    #[test]
    fn peer_without_port_is_kept() {
        let resp = Response::error(Status::Ok, Version::Http11);
        let line = clf_line("somewhere", 5, &req(), &resp);
        assert!(line.starts_with("somewhere - - "));
    }

    #[test]
    fn now_variant_stamps_a_recent_time() {
        let resp = Response::error(Status::Ok, Version::Http11);
        let line = clf_line_now("h:1", &req(), &resp);
        let stamp: u64 = line
            .split('[')
            .nth(1)
            .unwrap()
            .split(']')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(stamp > 1_600_000_000, "stamp {stamp}");
    }
}
