//! The SpecWeb99 file-set layout.
//!
//! Each directory holds four *classes* of nine files each:
//!
//! | class | sizes              |
//! |-------|--------------------|
//! | 0     | 0.1 KB … 0.9 KB    |
//! | 1     | 1 KB … 9 KB        |
//! | 2     | 10 KB … 90 KB      |
//! | 3     | 100 KB … 900 KB    |
//!
//! One directory therefore holds ~5 MB; the paper's 204.8 MB file set is
//! about 41 directories.

/// File size class (SpecWeb99 classes 0–3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileClass(pub u8);

impl FileClass {
    /// Base size of class `c` in bytes: 102.4 B × 10^c (so file `i` of the
    /// class is `i × base`).
    pub fn base_bytes(self) -> u64 {
        // 0.1 KB expressed in bytes, times 10^class.
        let base = 102.4_f64 * 10f64.powi(self.0 as i32);
        base as u64
    }

    /// SpecWeb99 class access mix: 35% / 50% / 14% / 1%.
    pub fn access_weight(self) -> f64 {
        match self.0 {
            0 => 0.35,
            1 => 0.50,
            2 => 0.14,
            3 => 0.01,
            _ => 0.0,
        }
    }
}

/// One file in the set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileSpec {
    /// Global file id (stable across runs).
    pub id: u64,
    /// Directory index.
    pub dir: u32,
    /// Size class.
    pub class: FileClass,
    /// Index within the class (1–9).
    pub index: u8,
    /// Size in bytes.
    pub size: u64,
}

impl FileSpec {
    /// The file's URL path, e.g. `/dir0007/class2_5`.
    pub fn path(&self) -> String {
        format!("/dir{:04}/class{}_{}", self.dir, self.class.0, self.index)
    }
}

/// A complete SpecWeb99-style file set.
#[derive(Debug, Clone)]
pub struct FileSet {
    files: Vec<FileSpec>,
    dirs: u32,
    total_bytes: u64,
}

/// Bytes in one directory (classes 0–3, files 1–9 each).
pub fn dir_bytes() -> u64 {
    (0u8..4)
        .map(|c| {
            (1u64..=9)
                .map(|i| i * FileClass(c).base_bytes())
                .sum::<u64>()
        })
        .sum()
}

impl FileSet {
    /// Build a file set of at least `target_bytes` total size (the paper
    /// uses 204.8 MB).
    pub fn specweb99(target_bytes: u64) -> Self {
        let per_dir = dir_bytes();
        let dirs = target_bytes.div_ceil(per_dir).max(1) as u32;
        Self::with_dirs(dirs)
    }

    /// Build a file set with an explicit directory count.
    pub fn with_dirs(dirs: u32) -> Self {
        let mut files = Vec::with_capacity(dirs as usize * 36);
        let mut id = 0;
        let mut total = 0;
        for dir in 0..dirs {
            for c in 0u8..4 {
                let class = FileClass(c);
                for index in 1u8..=9 {
                    let size = index as u64 * class.base_bytes();
                    files.push(FileSpec {
                        id,
                        dir,
                        class,
                        index,
                        size,
                    });
                    id += 1;
                    total += size;
                }
            }
        }
        Self {
            files,
            dirs,
            total_bytes: total,
        }
    }

    /// All files.
    pub fn files(&self) -> &[FileSpec] {
        &self.files
    }

    /// File by global id.
    pub fn file(&self, id: u64) -> &FileSpec {
        &self.files[id as usize]
    }

    /// Look up a file by directory/class/index.
    pub fn lookup(&self, dir: u32, class: u8, index: u8) -> Option<&FileSpec> {
        if dir >= self.dirs || class >= 4 || !(1..=9).contains(&index) {
            return None;
        }
        let pos = dir as usize * 36 + class as usize * 9 + (index as usize - 1);
        Some(&self.files[pos])
    }

    /// Resolve a URL path produced by [`FileSpec::path`].
    pub fn resolve(&self, path: &str) -> Option<&FileSpec> {
        let rest = path.strip_prefix("/dir")?;
        let (dir_s, file_s) = rest.split_once('/')?;
        let dir: u32 = dir_s.parse().ok()?;
        let rest = file_s.strip_prefix("class")?;
        let (class_s, idx_s) = rest.split_once('_')?;
        let class: u8 = class_s.parse().ok()?;
        let index: u8 = idx_s.parse().ok()?;
        self.lookup(dir, class, index)
    }

    /// Directory count.
    pub fn dirs(&self) -> u32 {
        self.dirs
    }

    /// Total size in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Synthesize deterministic file contents of the right size (used by
    /// the real-mode COPS-HTTP integration tests).
    pub fn synth_content(&self, spec: &FileSpec) -> Vec<u8> {
        let mut data = Vec::with_capacity(spec.size as usize);
        let seed = spec.id.wrapping_mul(0x9E3779B97F4A7C15);
        while data.len() < spec.size as usize {
            let b = (seed >> (data.len() % 57 % 56)) as u8;
            data.push(b ^ (data.len() as u8));
        }
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_base_sizes() {
        assert_eq!(FileClass(0).base_bytes(), 102);
        assert_eq!(FileClass(1).base_bytes(), 1024);
        assert_eq!(FileClass(2).base_bytes(), 10240);
        assert_eq!(FileClass(3).base_bytes(), 102400);
    }

    #[test]
    fn directory_holds_36_files_of_about_5mb() {
        let fs = FileSet::with_dirs(1);
        assert_eq!(fs.files().len(), 36);
        let per_dir = dir_bytes();
        assert!(
            (4_900_000..5_300_000).contains(&per_dir),
            "dir bytes {per_dir}"
        );
        assert_eq!(fs.total_bytes(), per_dir);
    }

    #[test]
    fn paper_file_set_size_and_dir_count() {
        let target = (204.8 * 1024.0 * 1024.0) as u64;
        let fs = FileSet::specweb99(target);
        assert!(fs.total_bytes() >= target);
        // ~205 MB / ~5.1 MB per dir ≈ 42 dirs.
        assert!((40..=44).contains(&fs.dirs()), "dirs {}", fs.dirs());
    }

    #[test]
    fn ids_are_dense_and_lookup_agrees() {
        let fs = FileSet::with_dirs(3);
        for (i, f) in fs.files().iter().enumerate() {
            assert_eq!(f.id as usize, i);
            assert_eq!(fs.lookup(f.dir, f.class.0, f.index).unwrap().id, f.id);
            assert_eq!(fs.file(f.id).path(), f.path());
        }
    }

    #[test]
    fn paths_resolve_round_trip() {
        let fs = FileSet::with_dirs(2);
        for f in fs.files() {
            let resolved = fs.resolve(&f.path()).expect("resolvable");
            assert_eq!(resolved.id, f.id);
        }
        assert!(fs.resolve("/nope").is_none());
        assert!(
            fs.resolve("/dir0009/class1_5").is_none(),
            "dir out of range"
        );
        assert!(fs.resolve("/dir0001/class9_5").is_none());
        assert!(fs.resolve("/dir0001/class1_0").is_none());
    }

    #[test]
    fn synth_content_matches_size_and_is_deterministic() {
        let fs = FileSet::with_dirs(1);
        let f = fs.lookup(0, 2, 5).unwrap();
        let a = fs.synth_content(f);
        let b = fs.synth_content(f);
        assert_eq!(a.len(), f.size as usize);
        assert_eq!(a, b);
    }

    #[test]
    fn access_weights_sum_to_one() {
        let sum: f64 = (0u8..4).map(|c| FileClass(c).access_weight()).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }
}
