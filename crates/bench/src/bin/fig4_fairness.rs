//! Fig. 4 — service fairness (Jain index over per-client response
//! counts), COPS-HTTP vs Apache, 1…1024 clients.
//!
//! Expected shape (paper): COPS-HTTP stays near 1.0 throughout; Apache
//! collapses under heavy load (0.51 at 1024 clients) because its 150
//! workers serve the lucky few while dropped SYNs put everyone else into
//! exponential backoff (up to the 60 s Solaris cap).

use nserver_baselines::world::CopsParams;
use nserver_baselines::{ApacheParams, ExperimentParams, ServerKind, World};
use nserver_bench::{quick_mode, render_table, write_csv, CLIENT_LADDER};
use nserver_netsim::SimTime;

fn run(clients: usize, kind: ServerKind, quick: bool) -> (f64, u64) {
    let mut p = ExperimentParams::figure3(clients, kind);
    if quick {
        p.warmup = SimTime::from_secs(5);
        p.measure = SimTime::from_secs(30);
    }
    let out = World::new(p).run();
    (out.fairness, out.syn_drops)
}

fn main() {
    let quick = quick_mode();
    println!("FIG. 4 — SERVICE FAIRNESS (JAIN INDEX), COPS-HTTP vs APACHE");
    println!("f(x) = (Σxᵢ)² / (N·Σxᵢ²) over per-client response counts\n");

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &clients in &CLIENT_LADDER {
        let (apache, drops) = run(clients, ServerKind::Apache(ApacheParams::default()), quick);
        let (cops, _) = run(clients, ServerKind::Cops(CopsParams::default()), quick);
        rows.push(vec![
            clients.to_string(),
            format!("{apache:.3}"),
            format!("{cops:.3}"),
            drops.to_string(),
        ]);
        csv.push(format!("{clients},{apache:.4},{cops:.4},{drops}"));
        eprintln!("  ran {clients} clients: apache {apache:.3} vs cops {cops:.3}");
    }
    println!(
        "{}",
        render_table(
            &[
                "clients",
                "Apache fairness",
                "COPS-HTTP fairness",
                "Apache SYN drops"
            ],
            &rows,
        )
    );
    println!(
        "Paper shape: COPS-HTTP ≈ 1.0 at every load; Apache degrades once\n\
         clients exceed its 150-process pool, reaching ≈ 0.51 at 1024."
    );
    write_csv(
        "fig4_fairness.csv",
        "clients,apache_fairness,cops_fairness,apache_syn_drops",
        &csv,
    );
}
