//! Ablation for option O6: how the application file-cache size changes
//! COPS-HTTP's hit rate and throughput on the Fig. 3 workload (the paper
//! fixes 20 MB; this sweep shows what that choice buys).

use nserver_baselines::world::CopsParams;
use nserver_baselines::{ExperimentParams, ServerKind, World};
use nserver_bench::{quick_mode, render_table, write_csv};
use nserver_netsim::SimTime;

fn main() {
    let quick = quick_mode();
    println!("ABLATION — O6 FILE-CACHE SIZE (COPS-HTTP, Fig. 3 workload, 256 clients)\n");

    let sizes: [(&str, Option<u64>); 5] = [
        ("no cache", None),
        ("5 MB", Some(5 << 20)),
        ("20 MB (paper)", Some(20 << 20)),
        ("80 MB", Some(80 << 20)),
        ("205 MB (whole set)", Some(215 << 20)),
    ];

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (label, bytes) in sizes {
        let cops = CopsParams {
            app_cache_bytes: bytes,
            ..CopsParams::default()
        };
        let mut p = ExperimentParams::figure3(256, ServerKind::Cops(cops));
        // Slow the disk so cache effectiveness is visible through the
        // network bottleneck.
        p.os_cache_bytes = 4 * 1024 * 1024;
        p.disk_bytes_per_sec = 20_000_000;
        if quick {
            p.warmup = SimTime::from_secs(5);
            p.measure = SimTime::from_secs(30);
        }
        let out = World::new(p).run();
        rows.push(vec![
            label.to_string(),
            format!("{:.0}%", out.app_cache_hit_rate * 100.0),
            format!("{:.1}", out.throughput_rps),
            format!("{:.0}", out.mean_response_ms),
        ]);
        csv.push(format!(
            "{label},{:.3},{:.2},{:.1}",
            out.app_cache_hit_rate, out.throughput_rps, out.mean_response_ms
        ));
        eprintln!("  ran cache={label}");
    }
    println!(
        "{}",
        render_table(&["app cache", "hit rate", "rps", "mean resp ms"], &rows)
    );
    println!(
        "Expected shape: hit rate and throughput rise steeply up to a few\n\
         tens of MB (the Zipf head fits) and flatten after — the paper's\n\
         20 MB choice sits near the knee."
    );
    write_csv("ablation_cache.csv", "cache,hit_rate,rps,resp_ms", &csv);
}
