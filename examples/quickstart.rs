//! Quickstart: the smallest useful N-Server — an uppercase-echo server.
//!
//! Demonstrates the programmer's entire job under the pattern template:
//! supply the three application-dependent hooks (Decode, Handle, Encode)
//! and a template option configuration; everything else — the reactor,
//! the event processor, connection management — is framework.
//!
//! Run: `cargo run -p nserver-examples --bin quickstart`
//! The demo starts the server on a loopback port, drives it with a
//! client, prints the exchange, and shuts down.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use bytes::BytesMut;
use nserver_core::prelude::*;

/// Decode Request / Encode Reply: newline-delimited text.
struct LineCodec;

impl Codec for LineCodec {
    type Request = String;
    type Response = String;

    fn decode(&self, buf: &mut BytesMut) -> Result<Option<String>, ProtocolError> {
        match buf.iter().position(|&b| b == b'\n') {
            Some(i) => {
                let line = buf.split_to(i + 1);
                Ok(Some(String::from_utf8_lossy(&line[..i]).into_owned()))
            }
            None => Ok(None),
        }
    }

    fn encode(&self, resp: &String, out: &mut BytesMut) -> Result<(), ProtocolError> {
        out.extend_from_slice(resp.as_bytes());
        out.extend_from_slice(b"\n");
        Ok(())
    }
}

/// Handle Request: uppercase the line; `quit` closes the connection.
struct UppercaseService;

impl Service<LineCodec> for UppercaseService {
    fn handle(&self, _ctx: &ConnCtx, req: String) -> Action<String> {
        if req == "quit" {
            Action::ReplyClose("BYE".into())
        } else {
            Action::Reply(req.to_uppercase())
        }
    }

    fn on_open(&self, _ctx: &ConnCtx) -> Option<String> {
        Some("WELCOME".into())
    }
}

fn main() {
    // One dispatcher, 4-worker event processor, five-step pipeline —
    // the template defaults.
    let options = ServerOptions::default();
    let server = ServerBuilder::new(options, LineCodec, UppercaseService)
        .expect("valid options")
        .serve(TcpListenerNb::bind("127.0.0.1:0").expect("bind"));
    let addr = server.local_label().to_string();
    println!("quickstart server listening on {addr}");

    // Drive it with a plain blocking client.
    let mut client = TcpStream::connect(&addr).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    client
        .write_all(b"hello pattern templates\nquit\n")
        .unwrap();
    let mut reply = String::new();
    let mut buf = [0u8; 256];
    loop {
        match client.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => reply.push_str(&String::from_utf8_lossy(&buf[..n])),
            Err(_) => break,
        }
    }
    print!("server said:\n{reply}");
    assert!(reply.contains("WELCOME"));
    assert!(reply.contains("HELLO PATTERN TEMPLATES"));
    assert!(reply.contains("BYE"));

    let stats = server.stats();
    println!(
        "stats: {} connection(s), {} request(s), {} bytes out",
        stats.connections_accepted, stats.requests_decoded, stats.bytes_sent
    );
    server.shutdown();
    println!("quickstart OK");
}
