//! The harness's soundness check: inject a known legality bug into the
//! real service and require the models to catch it, shrink it, and leave
//! a counterexample that replays from its serialized form. A conformance
//! suite that cannot fail proves nothing — these tests are the ones that
//! keep the green exploration runs meaningful.

use conformance::{
    generate, replaying_relay_diverges, run_ftp, run_http, run_http_lingerless, shrink,
    standard_ftp_service, standard_http_service, truncated_retr_service, DataOpKind, FtpMutation,
    HttpMutation, MutantFtp, MutantHttp, PrematureFtp, Proto, Schedule,
};

/// Find the first seed in `0..limit` whose schedule trips `fails`, check
/// the shrunken form still fails, and check the serialized artifact
/// round-trips into an equally failing schedule.
fn caught_shrunk_and_replayable(
    proto: Proto,
    limit: u64,
    fails: &dyn Fn(&Schedule) -> bool,
) -> Schedule {
    let sched = (0..limit)
        .map(|seed| generate(proto, seed))
        .find(|s| fails(s))
        .unwrap_or_else(|| panic!("no seed in 0..{limit} tripped the mutant — harness is blind"));
    let (shrunk, runs) = shrink(&sched, fails, 40);
    assert!(
        fails(&shrunk),
        "shrinking lost the failure after {runs} runs"
    );
    assert!(
        shrunk.serialize().len() <= sched.serialize().len(),
        "shrinking must not grow the schedule"
    );
    let replayed = Schedule::parse(&shrunk.serialize()).expect("artifact parses");
    assert_eq!(replayed.fingerprint(), shrunk.fingerprint());
    assert!(fails(&replayed), "artifact must replay the failure");
    replayed
}

#[test]
fn http_phantom_200_for_misses_is_caught() {
    let fails = |s: &Schedule| {
        let svc = MutantHttp::new(standard_http_service(), HttpMutation::MissBecomesOk);
        let report = run_http(s, svc);
        report
            .violations
            .iter()
            .any(|v| v.kind == "byte-divergence")
    };
    let witness = caught_shrunk_and_replayable(Proto::Http, 25, &fails);
    assert!(
        witness
            .conns
            .iter()
            .any(|c| c.bytes().windows(8).any(|w| w == b"/missing")),
        "the shrunken witness should still request a missing path:\n{}",
        witness.serialize()
    );
}

#[test]
fn http_keep_alive_lie_on_close_is_caught() {
    let fails = |s: &Schedule| {
        let svc = MutantHttp::new(standard_http_service(), HttpMutation::DropConnectionClose);
        let report = run_http(s, svc);
        report
            .violations
            .iter()
            .any(|v| v.kind == "byte-divergence")
    };
    caught_shrunk_and_replayable(Proto::Http, 25, &fails);
}

#[test]
fn ftp_login_bypass_is_caught() {
    let fails = |s: &Schedule| {
        let svc = MutantFtp::new(standard_ftp_service(), FtpMutation::LoginAlwaysSucceeds);
        let report = run_ftp(s, svc);
        report.violations.iter().any(|v| v.kind == "reply-mismatch")
    };
    caught_shrunk_and_replayable(Proto::Ftp, 25, &fails);
}

/// Data-plane soundness, payload axis: a backend whose `/pub/hello.txt`
/// is silently truncated answers every control reply legally — only the
/// `RETR` download bytes betray it, so catching it proves the checker
/// really compares data-socket payloads against the replica VFS.
#[test]
fn ftp_truncated_retr_payload_is_caught() {
    let fails = |s: &Schedule| {
        let report = run_ftp(s, truncated_retr_service());
        report
            .violations
            .iter()
            .any(|v| v.kind == "data-payload-mismatch")
    };
    // The first witness needs a logged-in RETR of the truncated file to
    // reach a successful 226 — those are sparser than raw RETR lines, so
    // this scan band is wider than the control-channel mutants'.
    let witness = caught_shrunk_and_replayable(Proto::Ftp, 120, &fails);
    assert!(
        witness
            .conns
            .iter()
            .any(|c| c.bytes().windows(9).any(|w| w == b"hello.txt")),
        "the shrunken witness should still RETR the truncated file:\n{}",
        witness.serialize()
    );
}

/// Data-plane soundness, ordering axis: a service that acknowledges
/// `150`+`226` before the data socket has closed must be caught by the
/// global-sequence premature-completion check (or, when the orphaned
/// background transfer misses the tap entirely, as a missing data
/// trace).
#[test]
fn ftp_premature_completion_is_caught() {
    let fails = |s: &Schedule| {
        let report = run_ftp(s, PrematureFtp::new(standard_ftp_service()));
        report
            .violations
            .iter()
            .any(|v| v.kind == "premature-completion" || v.kind == "missing-data-trace")
    };
    caught_shrunk_and_replayable(Proto::Ftp, 40, &fails);
}

/// Close-semantics soundness: a transport mutant that rewrites the
/// server's FIN-first half-close into an immediate hard close. The
/// server-side traces stay perfect (the outbox drains before any close),
/// so only the client-delivery check can see the loss: the hard close
/// finds pipelined request bytes unread in the receive queue, resets the
/// connection, and the reset discards the final response out of the
/// client's receive queue.
#[test]
fn http_lingerless_close_is_caught() {
    let fails = |s: &Schedule| {
        // Deliver every step 50ms apart: far past the mutant's close
        // latency (the pipelined tail then lands deterministically after
        // the hard close and draws the reset), far under the real
        // server's 1s linger window. Pinning the race structurally keeps
        // the trip reproducible across shrink candidates; generated
        // pauses (0–2ms) would make it a coin flip. One retry absorbs
        // scheduler hiccups that outrun even the 50ms spacing.
        let trip = |s: &Schedule| {
            run_http_lingerless(s)
                .violations
                .iter()
                .any(|v| v.kind == "rst-discarded-tail")
        };
        let mut paced = s.clone();
        for st in &mut paced.order {
            st.pause_ms = 50;
        }
        (0..2).any(|_| trip(&paced))
    };
    // Tripping needs a clean connection that pipelines bytes past a
    // close-triggering request in a *later* segment — those line up less
    // often than a plain close, hence the wider band.
    caught_shrunk_and_replayable(Proto::Http, 60, &fails);
}

/// Cluster soundness: a relay that replays its upstream bytes — the
/// classic retry bug of re-sending a request that already succeeded —
/// must diverge from the direct arm. The witness is held to contain a
/// `STOR` upload so the replayed transfer is part of the story.
#[test]
fn relay_upstream_replay_is_caught() {
    let fails = |s: &Schedule| {
        s.conns
            .iter()
            .any(|c| c.data_ops.iter().any(|o| o.kind == DataOpKind::Write))
            && replaying_relay_diverges(Proto::Ftp, s)
    };
    caught_shrunk_and_replayable(Proto::Ftp, 40, &fails);
}

#[test]
fn unmutated_services_pass_the_same_seeds() {
    // The control arm: the exact seed band the mutation tests scan must be
    // violation-free without the mutants, or "caught" means nothing.
    for seed in 0..25 {
        let h = run_http(&generate(Proto::Http, seed), standard_http_service());
        assert!(
            h.violations.is_empty(),
            "http seed {seed}: {:?}",
            h.violations
        );
        let f = run_ftp(&generate(Proto::Ftp, seed), standard_ftp_service());
        assert!(
            f.violations.is_empty(),
            "ftp seed {seed}: {:?}",
            f.violations
        );
    }
}
