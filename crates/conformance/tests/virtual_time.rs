//! Simulated-time exploration: the virtual-clock driver must reach the
//! same verdicts as wall-clock delivery while spending (almost) none of
//! the schedules' scripted pause time.

use std::time::Instant;

use conformance::schedule::{generate, generate_stall_heavy};
use conformance::{explore_virtual, run, run_virtual, seed_range, Proto};

#[test]
fn virtual_sweep_http_band() {
    let seeds = seed_range(20000, 21000);
    let runs = seeds.len();
    let summary = explore_virtual(Proto::Http, seeds, generate);
    assert_eq!(summary.runs, runs);
    assert!(
        summary.distinct_schedules * 100 >= runs * 95,
        "schedule space too collapsed: {} distinct of {}",
        summary.distinct_schedules,
        runs
    );
}

#[test]
fn virtual_sweep_ftp_band() {
    let seeds = seed_range(21000, 22000);
    let runs = seeds.len();
    let summary = explore_virtual(Proto::Ftp, seeds, generate);
    assert_eq!(summary.runs, runs);
}

/// Wall-clock and virtual delivery agree on pipelined-past-close
/// schedules: the client must observe the complete final response (the
/// lingering close's delivery guarantee) in both drivers, with no
/// violations and identical verdicts.
#[test]
fn pipelined_close_tail_verdicts_match_wall_and_virtual() {
    let close_then_more = |bytes: &[u8]| {
        let find =
            |hay: &[u8], needle: &[u8]| hay.windows(needle.len()).position(|w| w == needle);
        find(bytes, b"Connection: close")
            .and_then(|i| find(&bytes[i..], b"\r\n\r\n").map(|j| i + j + 4))
            .is_some_and(|end| bytes.len() > end)
    };
    let mut exercised = 0;
    for seed in 20000..20120 {
        let sched = generate(Proto::Http, seed);
        if !sched.conns.iter().any(|c| close_then_more(&c.bytes())) {
            continue;
        }
        let wall = run(&sched);
        let virt = run_virtual(&sched);
        assert_eq!(
            wall.violations, virt.report.violations,
            "seed {seed}: wall and virtual verdicts must be identical"
        );
        assert!(
            wall.violations.is_empty(),
            "seed {seed}: {:?}",
            wall.violations
        );
        exercised += 1;
        if exercised == 8 {
            break;
        }
    }
    assert!(
        exercised >= 3,
        "only {exercised} pipelined-past-close schedules in the band"
    );
}

/// The headline claim: on stall-heavy schedules (every step pauses
/// 40–120ms) the virtual driver is at least 5× faster than wall-clock
/// delivery and reaches identical verdicts. Both presets run without
/// stage deadlines and all injected stalls are call-counted, so pacing
/// is unobservable to the server — verdict identity is by construction,
/// and this test pins it empirically.
#[test]
fn stall_heavy_wall_vs_virtual_verdicts_and_speedup() {
    let mut wall_us: u128 = 0;
    let mut virt_us: u128 = 0;
    let mut virtual_pause_ms: u64 = 0;
    for seed in 31000..31008 {
        for proto in [Proto::Http, Proto::Ftp] {
            let sched = generate_stall_heavy(proto, seed);
            let t0 = Instant::now();
            let wall = run(&sched);
            wall_us += t0.elapsed().as_micros();
            let t1 = Instant::now();
            let virt = run_virtual(&sched);
            virt_us += t1.elapsed().as_micros();
            assert_eq!(
                wall.violations, virt.report.violations,
                "{proto:?} seed {seed}: wall and virtual verdicts must be identical"
            );
            assert!(
                wall.violations.is_empty(),
                "{proto:?} seed {seed}: {:?}",
                wall.violations
            );
            assert_eq!(
                virt.timeline.deliveries.len(),
                sched.order.len(),
                "one link delivery per schedule step"
            );
            virtual_pause_ms += virt.timeline.virtual_elapsed_ms;
        }
    }
    assert!(
        virtual_pause_ms > 0,
        "stall-heavy schedules must script real pauses"
    );
    assert!(
        wall_us >= 5 * virt_us,
        "virtual exploration must be ≥5× faster on stall-heavy schedules: \
         wall {}ms vs virtual {}ms",
        wall_us / 1000,
        virt_us / 1000
    );
}
