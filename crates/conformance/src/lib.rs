//! # conformance
//!
//! Model-based conformance harness: executable protocol specifications
//! driving schedule exploration against the real reactor.
//!
//! The paper's claim is that generated N-Server frameworks behave
//! identically across template option columns. This crate turns that claim
//! into a checkable artifact. It has three layers:
//!
//! * **Executable models** ([`http_model`], [`ftp_model`]) — pure
//!   functions from a connection's *post-fault inbound bytes* to the set
//!   of legal outbound observations. The HTTP model is byte-exact: the
//!   expected response stream is fully determined by the decoded request
//!   stream and the content fixture, and a conforming trace must be a
//!   prefix of it (prefix closure is what makes the acceptor
//!   nondeterministic — a fault may cut the stream anywhere). The FTP
//!   model accepts the control channel at the reply-code +
//!   multiline-flag level (because `STAT` bodies carry live counters)
//!   and the **data plane byte-exactly**: `PASV` transfers are modeled
//!   as outcome slots whose joined data-connection traces must carry the
//!   exact `LIST`/`RETR` payload computed from a replica VFS, whose
//!   `STOR` uploads commit back into the replica (write-back visibility
//!   on a later `RETR`), and whose `150`+`226` completion must be
//!   written only after the data socket closed — checked against the
//!   trace log's global event sequence.
//! * **Schedules** ([`schedule`]) — a seeded, serializable description of
//!   one adversarial run: a [`nserver_core::fault::FaultPlan`], per-client
//!   byte scripts split into segments, scripted data-connection ops
//!   (drain / upload / abort mid-transfer), and an interleaving order
//!   with pauses. Equal seeds generate equal schedules; the fingerprint
//!   hashes the serialized form so distinct-schedule coverage is
//!   countable.
//! * **The explorer** ([`explorer`]) — runs the real server over the
//!   in-memory transport under `FaultyListener` + `TapListener`, delivers
//!   the schedule (spawning real TCP data connections for every `227`
//!   the server announces), and checks every recorded [`ConnTrace`]
//!   against the model. [`explorer::run_virtual`] replaces delivery
//!   sleeps with a [`nserver_netsim`] virtual clock, so stall-heavy
//!   schedules cost near-zero wall-clock with identical verdicts. On
//!   violation the explorer shrinks the schedule greedily and panics
//!   with a replayable counterexample (seed + serialized schedule).
//! * **The relay differential** ([`relay`]) — drives one sanitized
//!   schedule over real TCP against a direct backend and against a
//!   [`nserver_core::cluster::ClusterFrontEnd`] (optionally with a dead
//!   backend forcing retry-rotation), and asserts the client-observable
//!   traces are equivalent.
//!
//! [`mutant`] and [`relay::ReplayingProxy`] provide deliberately broken
//! services and relays used by the mutation tests: each must be caught
//! by the models, which is the harness's own soundness check.

pub mod explorer;
pub mod ftp_model;
pub mod http_model;
pub mod mutant;
pub mod relay;
pub mod schedule;

pub use explorer::{
    explore, explore_virtual, run, run_ftp, run_ftp_lingerless, run_http, run_http_lingerless,
    run_http_with_options, run_virtual, seed_range, shrink, standard_ftp_service,
    standard_http_service, ExploreSummary, FtpDataTapTarget, RunReport, VirtualReport,
    VirtualTimeline,
};
pub use ftp_model::{check_ftp, check_ftp_session, FtpDataCtx, FtpModel};
pub use http_model::HttpFixture;
pub use mutant::{
    truncated_retr_service, FtpMutation, HttpMutation, LingerlessListener, LingerlessPoller,
    LingerlessStream, MutantFtp, MutantHttp, PrematureFtp,
};
pub use relay::{relay_differential, replaying_relay_diverges, DiffReport, ReplayingProxy};
pub use schedule::{
    enumerate_orders, generate, generate_stall_heavy, ConnScript, DataOp, DataOpKind, Proto,
    Schedule, Step,
};

use nserver_core::tap::{ConnTrace, TapEvent};

/// One conformance violation found in a connection trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// 1-based accept index of the offending connection.
    pub accept_index: u64,
    /// Fault profile the plan assigned to it.
    pub profile: String,
    /// Violation class (stable identifier for grepping).
    pub kind: &'static str,
    /// Human-readable diagnosis.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "conn #{} [{}] {}: {}",
            self.accept_index, self.profile, self.kind, self.detail
        )
    }
}

/// The protocol-independent event-legality rule: once a connection's
/// transport has failed hard (a `ReadError` or `WriteError`), its sink is
/// dead — any later `Wrote` or `WriteError` is a reply written to a reset
/// peer. Writing after `ReadEof` alone is legal: half-close only ends the
/// request stream, and pending responses must still drain.
pub fn event_order_violation(trace: &ConnTrace) -> Option<Violation> {
    let mut dead = false;
    for (i, ev) in trace.events.iter().enumerate() {
        match ev {
            TapEvent::Wrote(b) if dead => {
                return Some(Violation {
                    accept_index: trace.accept_index,
                    profile: trace.profile.clone(),
                    kind: "write-after-error",
                    detail: format!("event {i}: {} bytes written after the sink died", b.len()),
                });
            }
            TapEvent::WriteError(e) if dead => {
                return Some(Violation {
                    accept_index: trace.accept_index,
                    profile: trace.profile.clone(),
                    kind: "write-after-error",
                    detail: format!("event {i}: write retried on a dead sink ({e})"),
                });
            }
            TapEvent::ReadError(_) | TapEvent::WriteError(_) => dead = true,
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(events: Vec<TapEvent>) -> ConnTrace {
        ConnTrace::synthetic(1, "peer-1", "Clean", events)
    }

    #[test]
    fn writes_after_eof_are_legal() {
        let t = trace(vec![
            TapEvent::Read(b"GET".to_vec()),
            TapEvent::ReadEof,
            TapEvent::Wrote(b"HTTP/1.1 200".to_vec()),
        ]);
        assert!(event_order_violation(&t).is_none());
    }

    #[test]
    fn write_after_read_error_is_flagged() {
        let t = trace(vec![
            TapEvent::ReadError("reset".into()),
            TapEvent::Wrote(b"late".to_vec()),
        ]);
        let v = event_order_violation(&t).expect("violation");
        assert_eq!(v.kind, "write-after-error");
    }

    #[test]
    fn single_write_error_is_legal_but_a_second_is_not() {
        let ok = trace(vec![
            TapEvent::Wrote(b"partial".to_vec()),
            TapEvent::WriteError("reset".into()),
        ]);
        assert!(event_order_violation(&ok).is_none());
        let bad = trace(vec![
            TapEvent::WriteError("reset".into()),
            TapEvent::WriteError("reset".into()),
        ]);
        assert!(event_order_violation(&bad).is_some());
    }
}
