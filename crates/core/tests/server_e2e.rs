//! End-to-end tests of the assembled framework: a real server instance
//! (dispatcher threads + event processor + proactor helpers) exercised
//! over the in-memory transport and over real loopback TCP, across the
//! template-option combinations that change the framework's structure.

use std::time::{Duration, Instant};

use bytes::BytesMut;
use nserver_core::options::{
    CompletionMode, DispatcherThreads, EventScheduling, Mode, OverloadControl, ServerOptions,
    ThreadAllocation,
};
use nserver_core::pipeline::{Action, Codec, ConnCtx, ProtocolError, Service};
use nserver_core::server::ServerBuilder;
use nserver_core::transport::mem;
use nserver_core::transport::{ReadOutcome, StreamIo, TcpListenerNb, TcpStreamNb};
use nserver_core::Priority;
use proptest::prelude::*;

/// Newline-delimited text codec.
struct LineCodec;

impl Codec for LineCodec {
    type Request = String;
    type Response = String;

    fn decode(&self, buf: &mut BytesMut) -> Result<Option<String>, ProtocolError> {
        match buf.iter().position(|&b| b == b'\n') {
            Some(i) => {
                let line = buf.split_to(i + 1);
                let s = std::str::from_utf8(&line[..i])
                    .map_err(|_| ProtocolError("not utf8".into()))?
                    .to_string();
                if s == "POISON" {
                    return Err(ProtocolError("poison".into()));
                }
                Ok(Some(s))
            }
            None => Ok(None),
        }
    }

    fn encode(&self, r: &String, out: &mut BytesMut) -> Result<(), ProtocolError> {
        out.extend_from_slice(r.as_bytes());
        out.extend_from_slice(b"\n");
        Ok(())
    }
}

/// Echo service with a greeting and blocking-work command.
struct EchoService;

impl Service<LineCodec> for EchoService {
    fn handle(&self, ctx: &ConnCtx, req: String) -> Action<String> {
        match req.as_str() {
            "quit" => Action::ReplyClose("bye".into()),
            "prio" => Action::Reply(format!("{}", ctx.priority)),
            "work" => Action::Defer(Box::new(|| {
                std::thread::sleep(Duration::from_millis(5));
                "worked".to_string()
            })),
            other => Action::Reply(format!("echo:{other}")),
        }
    }

    fn on_open(&self, _ctx: &ConnCtx) -> Option<String> {
        Some("hello".to_string())
    }
}

/// Drive a MemStream client: send `input`, read until `expected_lines`
/// complete lines arrive or the deadline passes.
fn talk(stream: &mut mem::MemStream, input: &[u8], expected_lines: usize) -> Vec<String> {
    stream.try_write(input).unwrap();
    read_lines(stream, expected_lines)
}

fn read_lines(stream: &mut mem::MemStream, expected_lines: usize) -> Vec<String> {
    let mut acc = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut buf = [0u8; 4096];
    while Instant::now() < deadline {
        match stream.try_read(&mut buf).unwrap() {
            ReadOutcome::Data(n) => acc.extend_from_slice(&buf[..n]),
            ReadOutcome::WouldBlock => std::thread::sleep(Duration::from_micros(200)),
            ReadOutcome::Closed => break,
        }
        if acc.iter().filter(|&&b| b == b'\n').count() >= expected_lines {
            break;
        }
    }
    String::from_utf8(acc)
        .unwrap()
        .lines()
        .map(|s| s.to_string())
        .collect()
}

fn base_options() -> ServerOptions {
    ServerOptions {
        mode: Mode::Debug,
        profiling: true,
        ..ServerOptions::default()
    }
}

#[test]
fn mem_transport_greeting_echo_and_quit() {
    let (listener, connector) = mem::listener("test");
    let server = ServerBuilder::new(base_options(), LineCodec, EchoService)
        .unwrap()
        .serve(listener);

    let mut c = connector.connect();
    let lines = talk(&mut c, b"one\ntwo\nquit\n", 4);
    assert_eq!(lines, vec!["hello", "echo:one", "echo:two", "bye"]);

    // Server closes after "quit".
    let deadline = Instant::now() + Duration::from_secs(2);
    let mut closed = false;
    let mut buf = [0u8; 64];
    while Instant::now() < deadline {
        if matches!(c.try_read(&mut buf).unwrap(), ReadOutcome::Closed) {
            closed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(closed, "server did not close after quit");

    let stats = server.stats();
    assert_eq!(stats.connections_accepted, 1);
    assert_eq!(stats.requests_decoded, 3);
    assert!(stats.bytes_read >= 13);
    assert!(
        !server.tracer().dump().is_empty(),
        "debug mode traces events"
    );
    server.shutdown();
}

#[test]
fn inline_reactor_mode_works_without_pool() {
    // O2 = No: the classic Reactor, handlers on the dispatcher thread.
    let opts = ServerOptions {
        separate_handler_pool: false,
        thread_allocation: ThreadAllocation::Static { threads: 1 },
        ..base_options()
    };
    let (listener, connector) = mem::listener("inline");
    let server = ServerBuilder::new(opts, LineCodec, EchoService)
        .unwrap()
        .serve(listener);
    assert_eq!(server.live_workers(), 0, "no event-processor workers");
    let mut c = connector.connect();
    let lines = talk(&mut c, b"x\n", 2);
    assert_eq!(lines, vec!["hello", "echo:x"]);
    server.shutdown();
}

#[test]
fn async_completion_mode_defers_to_helper_pool() {
    let opts = ServerOptions {
        completion_mode: CompletionMode::Asynchronous,
        ..base_options()
    };
    let (listener, connector) = mem::listener("async");
    let server = ServerBuilder::new(opts, LineCodec, EchoService)
        .unwrap()
        .serve(listener);
    let mut c = connector.connect();
    // Interleave blocking and fast requests; replies must stay in order.
    let lines = talk(&mut c, b"work\nfast\nwork\n", 4);
    assert_eq!(lines, vec!["hello", "worked", "echo:fast", "worked"]);
    assert_eq!(server.stats().blocking_ops, 2);
    server.shutdown();
}

#[test]
fn two_dispatchers_partition_connections() {
    let opts = ServerOptions {
        dispatcher_threads: DispatcherThreads::Multi(2),
        ..base_options()
    };
    let (listener, connector) = mem::listener("multi");
    let server = ServerBuilder::new(opts, LineCodec, EchoService)
        .unwrap()
        .serve(listener);
    let mut clients: Vec<_> = (0..6).map(|_| connector.connect()).collect();
    for (i, c) in clients.iter_mut().enumerate() {
        let lines = talk(c, format!("m{i}\n").as_bytes(), 2);
        assert_eq!(lines, vec!["hello".to_string(), format!("echo:m{i}")]);
    }
    assert_eq!(server.stats().connections_accepted, 6);
    server.shutdown();
}

#[test]
fn priority_policy_assigns_levels() {
    let opts = ServerOptions {
        event_scheduling: EventScheduling::Yes { quotas: vec![8, 1] },
        ..base_options()
    };
    let (listener, connector) = mem::listener("prio");
    let server = ServerBuilder::new(opts, LineCodec, EchoService)
        .unwrap()
        // Odd-numbered peers are low priority.
        .priority_policy(|peer| {
            if peer.ends_with('1') || peer.ends_with('3') {
                Priority(1)
            } else {
                Priority(0)
            }
        })
        .serve(listener);
    let mut c1 = connector.connect(); // peer-1 -> low
    let mut c2 = connector.connect(); // peer-2 -> high
    assert_eq!(talk(&mut c1, b"prio\n", 2), vec!["hello", "P1"]);
    assert_eq!(talk(&mut c2, b"prio\n", 2), vec!["hello", "P0"]);
    server.shutdown();
}

#[test]
fn protocol_error_closes_connection_and_counts() {
    let (listener, connector) = mem::listener("err");
    let server = ServerBuilder::new(base_options(), LineCodec, EchoService)
        .unwrap()
        .serve(listener);
    let mut c = connector.connect();
    c.try_write(b"POISON\n").unwrap();
    let deadline = Instant::now() + Duration::from_secs(2);
    let mut buf = [0u8; 64];
    let mut closed = false;
    while Instant::now() < deadline {
        if matches!(c.try_read(&mut buf).unwrap(), ReadOutcome::Closed) {
            closed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(closed);
    assert_eq!(server.stats().protocol_errors, 1);
    server.shutdown();
}

#[test]
fn idle_connections_are_shut_down() {
    let opts = ServerOptions {
        idle_shutdown_ms: Some(150),
        ..base_options()
    };
    let (listener, connector) = mem::listener("idle");
    let server = ServerBuilder::new(opts, LineCodec, EchoService)
        .unwrap()
        .serve(listener);
    let mut c = connector.connect();
    assert_eq!(read_lines(&mut c, 1), vec!["hello"]);
    // Stay silent; the idle sweep must close us.
    let deadline = Instant::now() + Duration::from_secs(3);
    let mut buf = [0u8; 16];
    let mut closed = false;
    while Instant::now() < deadline {
        if matches!(c.try_read(&mut buf).unwrap(), ReadOutcome::Closed) {
            closed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(closed, "idle connection was not shut down");
    assert_eq!(server.stats().connections_idle_closed, 1);
    server.shutdown();
}

#[test]
fn max_connection_limit_defers_accepts() {
    let opts = ServerOptions {
        overload_control: OverloadControl::MaxConnections { limit: 2 },
        ..base_options()
    };
    let (listener, connector) = mem::listener("cap");
    let server = ServerBuilder::new(opts, LineCodec, EchoService)
        .unwrap()
        .serve(listener);
    let mut a = connector.connect();
    let mut b = connector.connect();
    assert_eq!(read_lines(&mut a, 1), vec!["hello"]);
    assert_eq!(read_lines(&mut b, 1), vec!["hello"]);
    // Third connection stays unaccepted while the first two are open.
    let mut c3 = connector.connect();
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(read_lines(&mut c3, 1), Vec::<String>::new());
    assert!(server.stats().accepts_deferred > 0);
    assert_eq!(server.stats().connections_accepted, 2);
    // Closing one admits the waiter.
    let _ = talk(&mut a, b"quit\n", 1);
    assert_eq!(read_lines(&mut c3, 1), vec!["hello"]);
    server.shutdown();
}

#[test]
fn dynamic_thread_allocation_serves_load() {
    let opts = ServerOptions {
        thread_allocation: ThreadAllocation::Dynamic {
            min: 1,
            max: 4,
            idle_keepalive_ms: 50,
        },
        ..base_options()
    };
    let (listener, connector) = mem::listener("dyn");
    let server = ServerBuilder::new(opts, LineCodec, EchoService)
        .unwrap()
        .serve(listener);
    let mut clients: Vec<_> = (0..8).map(|_| connector.connect()).collect();
    for c in clients.iter_mut() {
        c.try_write(b"work\n").unwrap();
    }
    for c in clients.iter_mut() {
        let lines = read_lines(c, 2);
        assert_eq!(lines, vec!["hello", "worked"]);
    }
    server.shutdown();
}

#[test]
fn tcp_loopback_end_to_end() {
    let listener = TcpListenerNb::bind("127.0.0.1:0").unwrap();
    let server = ServerBuilder::new(base_options(), LineCodec, EchoService)
        .unwrap()
        .serve(listener);
    let addr = server.local_label().to_string();

    let mut handles = Vec::new();
    for t in 0..4 {
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || {
            let mut c = TcpStreamNb::connect(&addr).unwrap();
            c.try_write(format!("t{t}\nquit\n").as_bytes()).unwrap();
            let mut acc = Vec::new();
            let mut buf = [0u8; 1024];
            let deadline = Instant::now() + Duration::from_secs(5);
            while Instant::now() < deadline {
                match c.try_read(&mut buf).unwrap() {
                    ReadOutcome::Data(n) => acc.extend_from_slice(&buf[..n]),
                    ReadOutcome::WouldBlock => std::thread::sleep(Duration::from_micros(500)),
                    ReadOutcome::Closed => break,
                }
            }
            String::from_utf8(acc).unwrap()
        }));
    }
    for (t, h) in handles.into_iter().enumerate() {
        let text = h.join().unwrap();
        assert_eq!(text, format!("hello\necho:t{t}\nbye\n"));
    }
    let stats = server.stats();
    assert_eq!(stats.connections_accepted, 4);
    assert_eq!(stats.requests_decoded, 8);
    server.shutdown();
}

#[test]
fn shutdown_closes_open_connections() {
    let (listener, connector) = mem::listener("down");
    let server = ServerBuilder::new(base_options(), LineCodec, EchoService)
        .unwrap()
        .serve(listener);
    let mut c = connector.connect();
    assert_eq!(read_lines(&mut c, 1), vec!["hello"]);
    server.shutdown();
    let mut buf = [0u8; 16];
    let deadline = Instant::now() + Duration::from_secs(2);
    let mut closed = false;
    while Instant::now() < deadline {
        if matches!(c.try_read(&mut buf).unwrap(), ReadOutcome::Closed) {
            closed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(closed);
}

#[test]
fn logging_option_emits_access_lines() {
    use nserver_core::trace::MemoryLogger;
    let opts = ServerOptions {
        logging: true,
        ..base_options()
    };
    let log = MemoryLogger::new();
    let (listener, connector) = mem::listener("log");
    let server = ServerBuilder::new(opts, LineCodec, EchoService)
        .unwrap()
        .logger(log.as_hook())
        .serve(listener);
    let mut c = connector.connect();
    let _ = talk(&mut c, b"a\nb\n", 3);
    // Greeting doesn't log; two request replies do.
    let deadline = Instant::now() + Duration::from_secs(2);
    while Instant::now() < deadline && log.lines().len() < 2 {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(log.lines().len(), 2);
    server.shutdown();
}

/// Lingering close: a request pipelined past the close-triggering one
/// must not cost the client the final response. The server half-closes
/// (FIN) after draining "bye", keeps reading, and discards the late
/// line instead of hard-closing into unread bytes (which would reset
/// the connection and flush the client's receive queue).
#[test]
fn lingering_close_preserves_the_final_response() {
    let (listener, connector) = mem::listener("linger");
    let server = ServerBuilder::new(base_options(), LineCodec, EchoService)
        .unwrap()
        .serve(listener);

    let mut c = connector.connect();
    c.try_write(b"a\nquit\n").unwrap();
    // Let "quit" close the connection server-side, then pipeline a late
    // line into the linger window.
    std::thread::sleep(Duration::from_millis(100));
    c.try_write(b"late\n").unwrap();

    // Every response up to and including the close-triggering one
    // arrives intact, then FIN.
    let lines = read_lines(&mut c, 3);
    assert_eq!(lines, vec!["hello", "echo:a", "bye"]);
    let deadline = Instant::now() + Duration::from_secs(2);
    let mut buf = [0u8; 64];
    let mut closed = false;
    while Instant::now() < deadline {
        match c.try_read(&mut buf).unwrap() {
            ReadOutcome::Closed => {
                closed = true;
                break;
            }
            ReadOutcome::Data(_) => panic!("unexpected bytes after 'bye'"),
            ReadOutcome::WouldBlock => std::thread::sleep(Duration::from_millis(1)),
        }
    }
    assert!(closed, "server never sent FIN after quit");
    // The client answers the FIN with its own: the linger ends on peer
    // EOF, not the deadline.
    c.shutdown_write();
    let deadline = Instant::now() + Duration::from_secs(2);
    while Instant::now() < deadline && server.stats().connections_closed < 1 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = server.stats();
    assert_eq!(stats.connections_lingered, 1);
    assert_eq!(stats.connections_closed, 1);
    assert_eq!(stats.linger_reaped, 0, "peer FIN should end the linger");
    server.shutdown();
}

/// A peer that never acknowledges the server's FIN is reaped when the
/// linger deadline (1s) passes instead of pinning the slot forever.
#[test]
fn silent_peer_is_linger_reaped_at_the_deadline() {
    let (listener, connector) = mem::listener("linger-reap");
    let server = ServerBuilder::new(base_options(), LineCodec, EchoService)
        .unwrap()
        .serve(listener);
    let mut c = connector.connect();
    let lines = talk(&mut c, b"quit\n", 2);
    assert_eq!(lines, vec!["hello", "bye"]);
    // Never FIN; the server must give up on its own.
    let deadline = Instant::now() + Duration::from_secs(4);
    while Instant::now() < deadline && server.stats().linger_reaped < 1 {
        std::thread::sleep(Duration::from_millis(20));
    }
    let stats = server.stats();
    assert_eq!(stats.connections_lingered, 1);
    assert_eq!(stats.linger_reaped, 1, "linger deadline never fired");
    server.shutdown();
}

/// A peer that half-closes mid-request leaves a fragment that can never
/// complete. The decode loop must reap it promptly — no `idle_shutdown_ms`
/// is configured here, so before the fix this connection hung until
/// server shutdown.
#[test]
fn half_close_mid_request_is_reaped_promptly() {
    let (listener, connector) = mem::listener("half");
    let server = ServerBuilder::new(base_options(), LineCodec, EchoService)
        .unwrap()
        .serve(listener);
    let mut c = connector.connect();
    assert_eq!(read_lines(&mut c, 1), vec!["hello"]);
    // A partial line (no terminator), then FIN.
    c.try_write(b"incompl").unwrap();
    c.shutdown_write();
    let deadline = Instant::now() + Duration::from_secs(2);
    let mut buf = [0u8; 64];
    let mut closed = false;
    while Instant::now() < deadline {
        if matches!(c.try_read(&mut buf).unwrap(), ReadOutcome::Closed) {
            closed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(closed, "mid-request half-close was not reaped");
    let stats = server.stats();
    assert_eq!(stats.connections_closed, 1);
    // FIN was already seen: a hard close, no linger needed.
    assert_eq!(stats.connections_lingered, 0);
    server.shutdown();
}

#[test]
fn heavy_pipelined_load_is_lossless() {
    let opts = ServerOptions {
        completion_mode: CompletionMode::Asynchronous,
        thread_allocation: ThreadAllocation::Static { threads: 4 },
        ..base_options()
    };
    let (listener, connector) = mem::listener("load");
    let server = ServerBuilder::new(opts, LineCodec, EchoService)
        .unwrap()
        .serve(listener);
    let mut c = connector.connect();
    let mut input = String::new();
    for i in 0..200 {
        if i % 10 == 0 {
            input.push_str("work\n");
        } else {
            input.push_str(&format!("r{i}\n"));
        }
    }
    let lines = talk(&mut c, input.as_bytes(), 201);
    assert_eq!(lines.len(), 201);
    assert_eq!(lines[0], "hello");
    // Replies are in request order despite async completions.
    let mut expect = Vec::new();
    for i in 0..200 {
        if i % 10 == 0 {
            expect.push("worked".to_string());
        } else {
            expect.push(format!("echo:r{i}"));
        }
    }
    assert_eq!(&lines[1..], &expect[..]);
    server.shutdown();
}

proptest! {
    // Each case boots a real server, so the case count stays small.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Delivery property behind the lingering close: for any pipeline of
    /// requests where one triggers the close, the client receives every
    /// response up to and including the final one, byte-exact — no
    /// matter how many requests ride behind the close trigger or when
    /// they land relative to the server's FIN.
    #[test]
    fn pipelined_close_delivers_every_response_byte_exact(
        words in proptest::collection::vec("[a-z]{1,8}", 1..6),
        tail in proptest::collection::vec("[a-z]{1,8}", 0..4),
        tail_pause_ms in 0u64..120,
    ) {
        let (listener, connector) = mem::listener("prop-linger");
        let server = ServerBuilder::new(base_options(), LineCodec, EchoService)
            .unwrap()
            .serve(listener);
        let mut c = connector.connect();

        let mut head = String::new();
        for w in &words {
            head.push_str(w);
            head.push('\n');
        }
        head.push_str("quit\n");
        c.try_write(head.as_bytes()).unwrap();
        if !tail.is_empty() {
            // Land the pipelined tail anywhere from before the close
            // decision to deep inside the linger window.
            std::thread::sleep(Duration::from_millis(tail_pause_ms));
            let mut late = String::new();
            for w in &tail {
                late.push_str(w);
                late.push('\n');
            }
            if c.try_write(late.as_bytes()).is_err() {
                // Linger already reaped (or shutdown raced): the close
                // trigger's responses were flushed before FIN either way.
            }
        }

        let mut expected = String::from("hello\n");
        for w in &words {
            expected.push_str(&format!("echo:{w}\n"));
        }
        expected.push_str("bye\n");

        let mut acc = Vec::new();
        let mut buf = [0u8; 4096];
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut closed = false;
        while Instant::now() < deadline {
            match c.try_read(&mut buf).unwrap() {
                ReadOutcome::Data(n) => acc.extend_from_slice(&buf[..n]),
                ReadOutcome::WouldBlock => std::thread::sleep(Duration::from_micros(300)),
                ReadOutcome::Closed => {
                    closed = true;
                    break;
                }
            }
        }
        prop_assert!(closed, "server never closed after quit");
        prop_assert_eq!(String::from_utf8(acc).unwrap(), expected);
        server.shutdown();
    }
}
