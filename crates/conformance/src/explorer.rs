//! The schedule explorer: run the real reactor under a [`Schedule`],
//! record every connection's observable trace, and check the traces
//! against the protocol models.
//!
//! The server runs exactly the production pipeline — the only test
//! scaffolding is the transport stack: an in-memory listener wrapped by
//! [`FaultyListener`] (injects the plan's faults) wrapped by
//! [`TapListener`] (records the traces the models consume). The driver
//! delivers each connection's segments in the schedule's interleaved
//! order, optionally slamming connections shut early, then quiesces:
//! clean connections are waited on until the model-predicted output has
//! drained, everything else until the trace log goes still.
//!
//! FTP schedules add a second plane: a **data pump** watches each control
//! connection's outbound trace for `227` replies, connects a real TCP
//! client to the announced passive port, and performs the schedule's
//! scripted [`DataOp`] (drain a download, push an upload, or abort the
//! socket mid-transfer). The service's data tap records both directions
//! of every data connection, joined to its control connection by accept
//! index and transfer ordinal, so [`check_ftp_session`] can hold
//! transfers to byte-exact payloads and completion-ordering rules.
//!
//! [`run_virtual`] is the simulated-time mode: delivery pauses advance a
//! [`nserver_netsim::Scheduler`] virtual clock instead of sleeping, so
//! stall-heavy schedules cost (almost) zero wall-clock while producing
//! the same model verdicts — both server presets run without stage
//! deadlines, so wall-clock pacing is unobservable to the model.
//!
//! On a violation the explorer shrinks the schedule greedily — dropping
//! connections, merging segments, zeroing fault knobs and pauses —
//! while the violation persists, and panics with a replayable
//! counterexample: the generation seed, the `NSERVER_REPLAY_SEED`
//! invocation, and the serialized shrunken schedule (ready for
//! `corpus/`).

use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use nserver_cache::{FileCache, PolicyKind, SharedFileCache};
use nserver_core::fault::{FaultProfile, FaultyListener};
use nserver_core::options::ServerOptions;
use nserver_core::pipeline::Service;
use nserver_core::server::ServerBuilder;
use nserver_core::tap::{ConnTrace, TapListener, TraceLog};
use nserver_core::transport::{mem, StreamIo};
use nserver_ftp::observe::parse_pasv_port;
use nserver_ftp::{cops_ftp_options, split_replies, FtpCodec, FtpService};
use nserver_http::{cops_http_options, HttpCodec, MemStore, StaticFileService};
use nserver_netsim::{Link, LinkEvent, Model, Scheduler, SimTime};
use parking_lot::Mutex;

use crate::ftp_model::{
    check_ftp_session, expected_replies, pasv_outcomes, FtpDataCtx, FtpFixture,
};
use crate::http_model::{check_http, expected_outbound, HttpFixture};
use crate::schedule::{generate, DataOp, DataOpKind, Proto, Schedule};
use crate::Violation;

/// Unique suffix per run so concurrent tests never share a listener
/// label.
static RUN_NONCE: AtomicU64 = AtomicU64::new(0);

/// Everything one exploration run produced.
#[derive(Debug)]
pub struct RunReport {
    /// Final trace of every accepted connection — control connections
    /// and (for FTP) their joined data connections.
    pub traces: Vec<ConnTrace>,
    /// Model violations found (empty = conforming run).
    pub violations: Vec<Violation>,
}

/// The delivery timeline of a simulated-time run.
#[derive(Debug)]
pub struct VirtualTimeline {
    /// Virtual clock reading after the last delivery step (the wall time
    /// the same schedule's pauses would have cost).
    pub virtual_elapsed_ms: u64,
    /// Per-segment delivery records from the netsim link model the
    /// virtual driver pushes its segments through.
    pub deliveries: Vec<LinkEvent>,
}

/// A [`RunReport`] plus the virtual-clock artifact.
#[derive(Debug)]
pub struct VirtualReport {
    /// The model-checking outcome (same shape as a wall-clock run).
    pub report: RunReport,
    /// The simulated delivery timeline.
    pub timeline: VirtualTimeline,
}

/// How the driver paces the schedule's delivery steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pacing {
    /// Sleep each step's `pause_ms` on the wall clock.
    Wall,
    /// Advance a netsim virtual clock instead; never sleep.
    Virtual,
}

/// Services that can host the explorer's data-connection tap. The
/// default is a refusal — the explorer then skips data-plane checks
/// (`recorded = false`) instead of reporting phantom missing traces.
pub trait FtpDataTapTarget {
    /// Attach `log` as the data-connection trace sink; return whether
    /// the service will actually record data connections into it.
    fn attach_data_tap(&self, _log: TraceLog) -> bool {
        false
    }
}

impl FtpDataTapTarget for FtpService {
    fn attach_data_tap(&self, log: TraceLog) -> bool {
        FtpService::attach_data_tap(self, log);
        true
    }
}

/// The standard COPS-HTTP service under test: the conformance fixture
/// behind a real LRU file cache, so both the hit and the deferred-miss
/// paths are exercised.
pub fn standard_http_service() -> StaticFileService<MemStore> {
    let cache = SharedFileCache::new(FileCache::new(1 << 20, PolicyKind::Lru));
    StaticFileService::new(HttpFixture::standard().store(), Some(cache))
}

/// The standard COPS-FTP service under test.
pub fn standard_ftp_service() -> FtpService {
    FtpService::new(FtpFixture::vfs(), FtpFixture::users())
}

/// Run a schedule against the standard service for its protocol.
pub fn run(sched: &Schedule) -> RunReport {
    match sched.proto {
        Proto::Http => run_http(sched, standard_http_service()),
        Proto::Ftp => run_ftp(sched, standard_ftp_service()),
    }
}

/// Run a schedule under the virtual clock: identical server, faults and
/// checking, but delivery pauses advance simulated time instead of
/// sleeping.
pub fn run_virtual(sched: &Schedule) -> VirtualReport {
    match sched.proto {
        Proto::Http => run_http_paced(
            sched,
            standard_http_service(),
            cops_http_options(),
            Pacing::Virtual,
        ),
        Proto::Ftp => run_ftp_paced(sched, standard_ftp_service(), Pacing::Virtual),
    }
}

/// Run an HTTP schedule against `svc` under the COPS-HTTP preset.
pub fn run_http<S: Service<HttpCodec>>(sched: &Schedule, svc: S) -> RunReport {
    run_http_with_options(sched, svc, cops_http_options())
}

/// Run an HTTP schedule against `svc` under explicit server options —
/// the hook the O1–O12 options-matrix conformance tests use.
pub fn run_http_with_options<S: Service<HttpCodec>>(
    sched: &Schedule,
    svc: S,
    opts: ServerOptions,
) -> RunReport {
    run_http_paced(sched, svc, opts, Pacing::Wall).report
}

/// The explorer's standard transport stack: traces outermost, then fault
/// injection, then the in-memory loopback.
type BaseListener = TapListener<FaultyListener<mem::MemListener>>;

/// Run an HTTP schedule against the standard service with the
/// [`LingerlessListener`] transport mutant interposed: every
/// server-initiated half-close becomes a hard close. Used by the
/// mutation tests to prove the client-delivery check catches an
/// RST-discarded response tail.
///
/// [`LingerlessListener`]: crate::mutant::LingerlessListener
pub fn run_http_lingerless(sched: &Schedule) -> RunReport {
    run_http_paced_on(
        sched,
        standard_http_service(),
        cops_http_options(),
        Pacing::Wall,
        crate::mutant::LingerlessListener::new,
    )
    .report
}

/// The FTP flavour of [`run_http_lingerless`] (QUIT is a server-initiated
/// close too).
pub fn run_ftp_lingerless(sched: &Schedule) -> RunReport {
    run_ftp_paced_on(
        sched,
        standard_ftp_service(),
        Pacing::Wall,
        crate::mutant::LingerlessListener::new,
    )
    .report
}

fn run_http_paced<S: Service<HttpCodec>>(
    sched: &Schedule,
    svc: S,
    opts: ServerOptions,
    pacing: Pacing,
) -> VirtualReport {
    run_http_paced_on(sched, svc, opts, pacing, |l: BaseListener| l)
}

fn run_http_paced_on<S, L, F>(
    sched: &Schedule,
    svc: S,
    opts: ServerOptions,
    pacing: Pacing,
    wrap: F,
) -> VirtualReport
where
    S: Service<HttpCodec>,
    L: nserver_core::transport::Listener,
    F: FnOnce(BaseListener) -> L,
{
    let fixture = HttpFixture::standard();
    let nonce = RUN_NONCE.fetch_add(1, Ordering::Relaxed);
    let (listener, connector) = mem::listener(&format!("conformance-http-{}-{nonce}", sched.seed));
    let log = TraceLog::new();
    let tapped = TapListener::new(FaultyListener::new(listener, sched.plan), log.clone())
        .with_plan(sched.plan);
    let server = ServerBuilder::new(opts, HttpCodec::new(), svc)
        .expect("valid server options")
        .serve(wrap(tapped));

    let shared_order = Arc::new(Mutex::new(vec![None; sched.conns.len()]));
    let (mut streams, connect_order, timeline) = deliver(sched, &connector, pacing, &shared_order);
    let targets = strict_targets(sched, &connect_order, |conn| {
        Target::Bytes(expected_outbound(&fixture, &conn.bytes()).0.len())
    });
    quiesce(&log, &targets, Duration::from_secs(3));
    server.shutdown();
    let traces = log.snapshot();
    let mut violations = collect_violations(sched, &traces, &log, &connect_order, |trace, strict| {
        check_http(&fixture, trace, strict)
    });
    violations.extend(client_delivery_violations(
        sched,
        &mut streams,
        &traces,
        &log,
        &connect_order,
        |conn, received| {
            let expected = expected_outbound(&fixture, &conn.bytes()).0;
            (received != expected).then(|| {
                format!(
                    "client received {} of {} expected response bytes",
                    received.len(),
                    expected.len()
                )
            })
        },
    ));
    drop(streams);
    VirtualReport {
        report: RunReport { traces, violations },
        timeline,
    }
}

/// Run an FTP schedule against `svc` under the COPS-FTP preset.
pub fn run_ftp<S: Service<FtpCodec> + FtpDataTapTarget>(sched: &Schedule, svc: S) -> RunReport {
    run_ftp_paced(sched, svc, Pacing::Wall).report
}

fn run_ftp_paced<S: Service<FtpCodec> + FtpDataTapTarget>(
    sched: &Schedule,
    svc: S,
    pacing: Pacing,
) -> VirtualReport {
    run_ftp_paced_on(sched, svc, pacing, |l: BaseListener| l)
}

fn run_ftp_paced_on<S, L, F>(sched: &Schedule, svc: S, pacing: Pacing, wrap: F) -> VirtualReport
where
    S: Service<FtpCodec> + FtpDataTapTarget,
    L: nserver_core::transport::Listener,
    F: FnOnce(BaseListener) -> L,
{
    let nonce = RUN_NONCE.fetch_add(1, Ordering::Relaxed);
    let (listener, connector) = mem::listener(&format!("conformance-ftp-{}-{nonce}", sched.seed));
    let log = TraceLog::new();
    let data_recorded = svc.attach_data_tap(log.clone());
    let tapped = TapListener::new(FaultyListener::new(listener, sched.plan), log.clone())
        .with_plan(sched.plan);
    let server = ServerBuilder::new(cops_ftp_options(), FtpCodec, svc)
        .expect("valid server options")
        .serve(wrap(tapped));

    let shared_order = Arc::new(Mutex::new(vec![None; sched.conns.len()]));
    let has_data_ops = sched.conns.iter().any(|c| !c.data_ops.is_empty());
    let pump = has_data_ops.then(|| spawn_data_pump(sched, &log, &shared_order));
    let (mut streams, connect_order, timeline) = deliver(sched, &connector, pacing, &shared_order);
    let targets = strict_targets(sched, &connect_order, |conn| {
        Target::Blocks(expected_replies(&conn.bytes()).len())
    });
    let patience = if has_data_ops {
        Duration::from_secs(6)
    } else {
        Duration::from_secs(3)
    };
    quiesce(&log, &targets, patience);
    server.shutdown();
    if let Some(pump) = pump {
        pump.finish();
    }
    let traces = log.snapshot();
    let mut violations = collect_ftp_violations(sched, &traces, &log, &connect_order, data_recorded);
    violations.extend(client_delivery_violations(
        sched,
        &mut streams,
        &traces,
        &log,
        &connect_order,
        |conn, received| {
            let want = expected_replies(&conn.bytes()).len();
            let got = split_replies(received).complete.len();
            (got < want).then(|| format!("client received {got} of {want} expected reply blocks"))
        },
    ));
    drop(streams);
    VirtualReport {
        report: RunReport { traces, violations },
        timeline,
    }
}

/// What quiescence means for one strictly-checked connection.
enum Target {
    /// At least this many outbound bytes (HTTP: byte-exact model).
    Bytes(usize),
    /// At least this many complete reply blocks (FTP: code-level model).
    Blocks(usize),
}

/// Per-step delivery state shared by both pacing modes.
struct DeliveryState {
    streams: Vec<Option<mem::MemStream>>,
    connect_order: Vec<Option<u64>>,
    next_order: u64,
    seg_idx: Vec<usize>,
}

impl DeliveryState {
    fn new(conns: usize) -> Self {
        Self {
            streams: (0..conns).map(|_| None).collect(),
            connect_order: vec![None; conns],
            next_order: 0,
            seg_idx: vec![0; conns],
        }
    }

    /// Deliver order step `i`: lazy-connect, push the segment, slam the
    /// connection shut after its last segment if scripted. Returns the
    /// segment's byte length.
    fn deliver_step(
        &mut self,
        sched: &Schedule,
        connector: &mem::MemConnector,
        shared_order: &Mutex<Vec<Option<u64>>>,
        i: usize,
    ) -> usize {
        let ci = sched.order[i].conn;
        if self.streams[ci].is_none() {
            self.streams[ci] = Some(connector.connect());
            self.next_order += 1;
            self.connect_order[ci] = Some(self.next_order);
            shared_order.lock()[ci] = Some(self.next_order);
        }
        let stream = self.streams[ci].as_mut().expect("just connected");
        let seg = &sched.conns[ci].segments[self.seg_idx[ci]];
        self.seg_idx[ci] += 1;
        push_bytes(stream, seg);
        if self.seg_idx[ci] == sched.conns[ci].segments.len() && sched.conns[ci].close_early {
            stream.shutdown();
        }
        seg.len()
    }
}

/// Records which delivery steps the virtual clock has released.
struct FiredSteps(Vec<usize>);

impl Model for FiredSteps {
    type Ev = usize;
    fn handle(&mut self, _now: SimTime, ev: usize, _sched: &mut Scheduler<usize>) {
        self.0.push(ev);
    }
}

/// Deliver the schedule: connect lazily on a connection's first step (so
/// connect order — and with the FIFO inbox, accept index — is the order
/// of first steps), push one segment per step, pause as scheduled, and
/// slam `close_early` connections shut right after their last segment.
/// Returns the client streams (kept open so the server never sees a
/// spurious EOF), each conn's 1-based connect order, and the virtual
/// timeline when pacing is [`Pacing::Virtual`].
fn deliver(
    sched: &Schedule,
    connector: &mem::MemConnector,
    pacing: Pacing,
    shared_order: &Arc<Mutex<Vec<Option<u64>>>>,
) -> (
    Vec<Option<mem::MemStream>>,
    Vec<Option<u64>>,
    VirtualTimeline,
) {
    let mut st = DeliveryState::new(sched.conns.len());
    let mut timeline = VirtualTimeline {
        virtual_elapsed_ms: 0,
        deliveries: Vec::new(),
    };
    match pacing {
        Pacing::Wall => {
            for i in 0..sched.order.len() {
                st.deliver_step(sched, connector, shared_order, i);
                let pause = sched.order[i].pause_ms;
                if pause > 0 {
                    std::thread::sleep(Duration::from_millis(pause));
                }
            }
        }
        Pacing::Virtual => {
            // Each step fires at the cumulative pause offset of the steps
            // before it; the scheduler's clock stands in for the sleeps.
            let mut clock: Scheduler<usize> = Scheduler::new();
            let mut t = SimTime::ZERO;
            for (i, step) in sched.order.iter().enumerate() {
                clock.at(t, i);
                t += SimTime::from_millis(step.pause_ms);
            }
            // The paper's effective testbed bandwidth, for the timeline
            // artifact only — delivery itself is not throttled.
            let mut link = Link::new(100_000_000).with_event_log();
            let mut fired = FiredSteps(Vec::new());
            while let Some(now) = clock.step(&mut fired) {
                let i = fired.0.pop().expect("one event per step");
                let bytes = st.deliver_step(sched, connector, shared_order, i);
                link.send(now, bytes as u64);
            }
            timeline.virtual_elapsed_ms = t.as_micros() / 1000;
            timeline.deliveries = link.take_events();
        }
    }
    (st.streams, st.connect_order, timeline)
}

/// Client-side tolerant write: retry backpressure, give up on a hard
/// error (the server legitimately reset or closed the pipe).
fn push_bytes(stream: &mut mem::MemStream, data: &[u8]) {
    let deadline = Instant::now() + Duration::from_secs(2);
    let mut sent = 0;
    while sent < data.len() && Instant::now() < deadline {
        match stream.try_write(&data[sent..]) {
            Ok(0) => std::thread::sleep(Duration::from_micros(100)),
            Ok(n) => sent += n,
            Err(_) => return,
        }
    }
}

/// The client side of the data plane: a background thread that watches
/// the trace log for `227` replies and runs each one's scripted
/// [`DataOp`] over a real TCP connection to the announced port.
struct DataPump {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl DataPump {
    fn finish(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn spawn_data_pump(
    sched: &Schedule,
    log: &TraceLog,
    shared_order: &Arc<Mutex<Vec<Option<u64>>>>,
) -> DataPump {
    let stop = Arc::new(AtomicBool::new(false));
    let ops: Vec<Vec<DataOp>> = sched.conns.iter().map(|c| c.data_ops.clone()).collect();
    let log = log.clone();
    let order = Arc::clone(shared_order);
    let stop_flag = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("conformance-data-pump".into())
        .spawn(move || {
            // served[ci] = how many of conn ci's 227 replies have been
            // matched to a data op already. Ops are scripted one per PASV
            // *command*, but only successful PASVs emit a 227 (and bind a
            // listener) — a pre-login PASV gets a 530 and its op must be
            // skipped, so the j-th observed 227 pairs with the op at the
            // j-th model-predicted-successful PASV position.
            let mut served = vec![0usize; ops.len()];
            let mut workers: Vec<JoinHandle<()>> = Vec::new();
            loop {
                // Read the flag before the snapshot so the final pass
                // still sees every 227 written before shutdown.
                let finished = stop_flag.load(Ordering::Relaxed);
                let snap = log.snapshot();
                let order_now = order.lock().clone();
                for (ci, conn_ops) in ops.iter().enumerate() {
                    let Some(k) = order_now.get(ci).copied().flatten() else {
                        continue;
                    };
                    let Some(trace) = snap
                        .iter()
                        .find(|t| t.accept_index == k && t.parent.is_none())
                    else {
                        continue;
                    };
                    // The tap records the server's *intended* outbound
                    // bytes (pre-corruption), so the 227 text is reliable
                    // even on faulty connections.
                    let pasv: Vec<String> = split_replies(&trace.outbound())
                        .complete
                        .iter()
                        .filter(|b| b.code == 227)
                        .map(|b| b.text.clone())
                        .collect();
                    if served[ci] >= pasv.len() {
                        continue;
                    }
                    // Map 227 ordinal → scripted op index by skipping ops
                    // whose PASV the model says was rejected. The walk is
                    // prefix-stable, so recomputing on a partial inbound
                    // never reorders earlier pairings.
                    let outcomes = pasv_outcomes(&trace.inbound());
                    let op_slots: Vec<usize> = outcomes
                        .iter()
                        .enumerate()
                        .filter_map(|(i, ok)| ok.then_some(i))
                        .collect();
                    while served[ci] < pasv.len() {
                        let text = &pasv[served[ci]];
                        let op = op_slots
                            .get(served[ci])
                            .and_then(|&i| conn_ops.get(i))
                            .cloned();
                        served[ci] += 1;
                        let (Some(port), Some(op)) = (parse_pasv_port(text), op) else {
                            continue;
                        };
                        let stop = Arc::clone(&stop_flag);
                        workers.push(std::thread::spawn(move || run_data_op(port, op, &stop)));
                    }
                }
                if finished {
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            for w in workers {
                let _ = w.join();
            }
        })
        .expect("spawn data pump");
    DataPump {
        stop,
        thread: Some(thread),
    }
}

/// Perform one scripted data-connection op against the passive port.
/// Downloads drain to EOF; uploads push the payload then close. An
/// `abort_after` cuts the socket mid-transfer instead. Every error path
/// just returns — the model judges outcomes from the server's traces.
fn run_data_op(port: u16, op: DataOp, stop: &AtomicBool) {
    let addr = SocketAddr::from(([127, 0, 0, 1], port));
    let Ok(mut stream) = TcpStream::connect_timeout(&addr, Duration::from_secs(2)) else {
        return;
    };
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let deadline = Instant::now() + Duration::from_secs(10);
    match op.kind {
        DataOpKind::Write => match op.abort_after {
            // Abrupt cut: deliver a strict prefix then close. The server
            // sees a short upload; the model commits whatever arrived.
            Some(n) => {
                let cut = n.min(op.payload.len());
                let _ = stream.write_all(&op.payload[..cut]);
            }
            None => {
                let _ = stream.write_all(&op.payload);
            }
        },
        DataOpKind::Read => {
            let mut total = 0usize;
            let mut buf = [0u8; 4096];
            loop {
                if op.abort_after.is_some_and(|n| total >= n) {
                    // Close with the rest unread: the in-flight bytes make
                    // the close abrupt and the server's next write fails.
                    return;
                }
                if Instant::now() > deadline {
                    return;
                }
                match stream.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => total += n,
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        // A dangling PASV is never accepted; leave when
                        // the run is over.
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                    }
                    Err(_) => break,
                }
            }
        }
    }
}

/// Drain everything a client stream still has buffered. Runs after
/// [`ServerHandle::shutdown`] has joined every dispatcher, so a single
/// pass to `WouldBlock`/`Closed` observes the final byte stream.
///
/// [`ServerHandle::shutdown`]: nserver_core::server::ServerHandle::shutdown
fn drain_client(stream: &mut mem::MemStream) -> Vec<u8> {
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.try_read(&mut buf) {
            Ok(nserver_core::transport::ReadOutcome::Data(n)) => out.extend_from_slice(&buf[..n]),
            _ => return out,
        }
    }
}

/// Client-observed delivery check. The server-side tap cannot see an
/// RST-discarded tail: the outbox is fully drained before any close, so
/// even a hard close that resets undelivered response bytes out of the
/// transport leaves a perfect `Wrote` trace — only the client's receive
/// queue shows the loss. After shutdown, every strictly-checked
/// connection's client must hold the complete model-predicted stream;
/// `expect` returns a diagnosis when it does not.
fn client_delivery_violations(
    sched: &Schedule,
    streams: &mut [Option<mem::MemStream>],
    traces: &[ConnTrace],
    log: &TraceLog,
    connect_order: &[Option<u64>],
    expect: impl Fn(&crate::schedule::ConnScript, &[u8]) -> Option<String>,
) -> Vec<Violation> {
    let failed: HashSet<u64> = log.accept_failures().into_iter().collect();
    let mut violations = Vec::new();
    for (ci, (conn, k)) in sched.conns.iter().zip(connect_order).enumerate() {
        let Some(k) = *k else { continue };
        let strict = !failed.contains(&k)
            && sched.plan.profile_for(k) == FaultProfile::Clean
            && !conn.close_early
            && !conn.has_abort();
        if !strict {
            continue;
        }
        if !traces
            .iter()
            .any(|t| t.accept_index == k && t.parent.is_none())
        {
            // Never accepted (run shut down first): nothing was promised
            // to this client.
            continue;
        }
        let Some(stream) = streams[ci].as_mut() else {
            continue;
        };
        let received = drain_client(stream);
        if let Some(detail) = expect(conn, &received) {
            violations.push(Violation {
                accept_index: k,
                profile: "Clean".to_string(),
                kind: "rst-discarded-tail",
                detail,
            });
        }
    }
    violations
}

/// The quiesce targets: one per connection the models will check
/// strictly (clean profile, no early close, no scripted aborts, accept
/// succeeded).
fn strict_targets(
    sched: &Schedule,
    connect_order: &[Option<u64>],
    target_for: impl Fn(&crate::schedule::ConnScript) -> Target,
) -> Vec<(u64, Target)> {
    sched
        .conns
        .iter()
        .zip(connect_order)
        .filter_map(|(conn, k)| {
            let k = (*k)?;
            let strict = !sched.plan.accept_fails(k)
                && sched.plan.profile_for(k) == FaultProfile::Clean
                && !conn.close_early
                && !conn.has_abort();
            strict.then(|| (k, target_for(conn)))
        })
        .collect()
}

fn target_met(trace: &ConnTrace, target: &Target) -> bool {
    match target {
        Target::Bytes(n) => trace.outbound().len() >= *n,
        Target::Blocks(n) => split_replies(&trace.outbound()).complete.len() >= *n,
    }
}

/// Wait until every strict connection has drained its model-predicted
/// output AND the trace log has gone still. `patience` is an *idle*
/// window, not a total budget: every observed trace-log change pushes
/// the deadline out again, so a loaded-but-live server is never cut
/// off mid-delivery (the flake would surface as a spurious strict
/// incomplete-delivery violation), while a run that stopped making
/// progress — a mutant's truncated stream, a genuinely wedged server —
/// still exits one idle window after its last event. A hard cap bounds
/// pathological trickle.
fn quiesce(log: &TraceLog, targets: &[(u64, Target)], patience: Duration) {
    let mut deadline = Instant::now() + patience;
    let hard_cap = Instant::now() + patience * 10;
    let mut last_sig: Option<Vec<(u64, usize)>> = None;
    let mut stable = 0;
    loop {
        let snap = log.snapshot();
        let targets_met = targets.iter().all(|(k, t)| {
            snap.iter()
                .find(|tr| tr.accept_index == *k && tr.parent.is_none())
                .is_some_and(|tr| target_met(tr, t))
        });
        let sig: Vec<(u64, usize)> = snap
            .iter()
            .map(|t| (t.accept_index, t.events.len()))
            .collect();
        if last_sig.as_ref() != Some(&sig) {
            deadline = Instant::now() + patience;
        }
        if targets_met && last_sig.as_ref() == Some(&sig) {
            stable += 1;
            if stable >= 2 {
                return;
            }
        } else {
            stable = 0;
        }
        last_sig = Some(sig);
        let now = Instant::now();
        if now > deadline || now > hard_cap {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Map each conn script to its trace (via connect order == accept index)
/// and run the model checker over it.
fn collect_violations(
    sched: &Schedule,
    traces: &[ConnTrace],
    log: &TraceLog,
    connect_order: &[Option<u64>],
    check: impl Fn(&ConnTrace, bool) -> Vec<Violation>,
) -> Vec<Violation> {
    let failed: HashSet<u64> = log.accept_failures().into_iter().collect();
    let mut violations = Vec::new();
    for (conn, k) in sched.conns.iter().zip(connect_order) {
        let Some(k) = *k else { continue };
        if failed.contains(&k) {
            // An injected accept failure: the connection never existed
            // server-side, so there is nothing to check.
            continue;
        }
        let Some(trace) = traces
            .iter()
            .find(|t| t.accept_index == k && t.parent.is_none())
        else {
            // Accepted-but-untraced cannot happen; never-accepted (run
            // shut down first) has no observable behaviour to judge.
            continue;
        };
        let strict = sched.plan.profile_for(k) == FaultProfile::Clean && !conn.close_early;
        violations.extend(check(trace, strict));
    }
    violations
}

/// The FTP flavour of [`collect_violations`]: joins each control trace
/// with its data-connection children and feeds both to the session
/// checker. A connection is held strict only when it is clean, never
/// closed early, and scripts no data aborts — any of those makes `425`
/// and truncated transfers legitimate outcomes.
fn collect_ftp_violations(
    sched: &Schedule,
    traces: &[ConnTrace],
    log: &TraceLog,
    connect_order: &[Option<u64>],
    data_recorded: bool,
) -> Vec<Violation> {
    let failed: HashSet<u64> = log.accept_failures().into_iter().collect();
    let mut violations = Vec::new();
    for (conn, k) in sched.conns.iter().zip(connect_order) {
        let Some(k) = *k else { continue };
        if failed.contains(&k) {
            continue;
        }
        let Some(trace) = traces
            .iter()
            .find(|t| t.accept_index == k && t.parent.is_none())
        else {
            continue;
        };
        let strict = sched.plan.profile_for(k) == FaultProfile::Clean
            && !conn.close_early
            && !conn.has_abort();
        let children: Vec<ConnTrace> = traces
            .iter()
            .filter(|t| t.parent.is_some_and(|p| p.control_accept_index == k))
            .cloned()
            .collect();
        let data = FtpDataCtx {
            children: &children,
            recorded: data_recorded,
            tolerant: !strict,
        };
        violations.extend(check_ftp_session(trace, strict, &data));
    }
    violations
}

/// Greedy counterexample shrinking: repeatedly try structural
/// simplifications, keeping any that still fail, until a fixed point or
/// the run budget is spent. Returns the shrunken schedule and how many
/// candidate runs it took.
pub fn shrink(
    orig: &Schedule,
    still_fails: &dyn Fn(&Schedule) -> bool,
    max_runs: usize,
) -> (Schedule, usize) {
    let mut cur = orig.clone();
    let mut runs = 0;
    'outer: loop {
        for cand in shrink_candidates(&cur) {
            if runs >= max_runs {
                break 'outer;
            }
            runs += 1;
            if still_fails(&cand) {
                cur = cand;
                continue 'outer;
            }
        }
        break;
    }
    (cur, runs)
}

/// One round of simplification candidates, most aggressive first.
fn shrink_candidates(s: &Schedule) -> Vec<Schedule> {
    let mut out = Vec::new();
    // Drop a whole connection (re-indexing the order).
    if s.conns.len() > 1 {
        for drop_ci in 0..s.conns.len() {
            let mut c = s.clone();
            c.conns.remove(drop_ci);
            c.order.retain(|st| st.conn != drop_ci);
            for st in &mut c.order {
                if st.conn > drop_ci {
                    st.conn -= 1;
                }
            }
            out.push(c);
        }
    }
    // Zero every fault knob, one family at a time.
    for knob in 0..6 {
        let mut c = s.clone();
        let p = &mut c.plan;
        let changed = match knob {
            0 => std::mem::take(&mut p.reset_per_mille) != 0,
            1 => std::mem::take(&mut p.storm_per_mille) != 0,
            2 => std::mem::take(&mut p.short_io_per_mille) != 0,
            3 => std::mem::take(&mut p.corrupt_per_mille) != 0,
            4 => std::mem::take(&mut p.stall_per_mille) != 0,
            _ => std::mem::take(&mut p.accept_fail_every) != 0,
        };
        if changed {
            out.push(c);
        }
    }
    // Disable early closes.
    for ci in 0..s.conns.len() {
        if s.conns[ci].close_early {
            let mut c = s.clone();
            c.conns[ci].close_early = false;
            out.push(c);
        }
    }
    // Drop scripted mid-transfer aborts (keeps the op, cleans the close).
    for ci in 0..s.conns.len() {
        for oi in 0..s.conns[ci].data_ops.len() {
            if s.conns[ci].data_ops[oi].abort_after.is_some() {
                let mut c = s.clone();
                c.conns[ci].data_ops[oi].abort_after = None;
                out.push(c);
            }
        }
    }
    // Shrink upload payloads.
    for ci in 0..s.conns.len() {
        for oi in 0..s.conns[ci].data_ops.len() {
            let len = s.conns[ci].data_ops[oi].payload.len();
            if len > 1 {
                let mut c = s.clone();
                c.conns[ci].data_ops[oi].payload.truncate(len / 2);
                out.push(c);
            }
        }
    }
    // Zero all pauses.
    if s.order.iter().any(|st| st.pause_ms > 0) {
        let mut c = s.clone();
        for st in &mut c.order {
            st.pause_ms = 0;
        }
        out.push(c);
    }
    // Merge a connection's last two segments (drops one order step).
    for ci in 0..s.conns.len() {
        if s.conns[ci].segments.len() > 1 {
            let mut c = s.clone();
            let tail = c.conns[ci].segments.pop().expect("len > 1");
            c.conns[ci]
                .segments
                .last_mut()
                .expect("len > 0")
                .extend_from_slice(&tail);
            let last_step = c
                .order
                .iter()
                .rposition(|st| st.conn == ci)
                .expect("conn has steps");
            c.order.remove(last_step);
            out.push(c);
        }
    }
    // Halve a connection's final segment.
    for ci in 0..s.conns.len() {
        let seg = s.conns[ci].segments.last().expect("non-empty");
        if seg.len() > 1 {
            let mut c = s.clone();
            let half = seg.len() / 2;
            c.conns[ci]
                .segments
                .last_mut()
                .expect("non-empty")
                .truncate(half);
            out.push(c);
        }
    }
    out
}

/// Shrink `sched` and panic with a fully replayable counterexample.
pub fn fail_with_counterexample(
    sched: &Schedule,
    violations: &[Violation],
    still_fails: &dyn Fn(&Schedule) -> bool,
) -> ! {
    let (shrunk, runs) = shrink(sched, still_fails, 200);
    let listing: String = violations.iter().map(|v| format!("  {v}\n")).collect();
    panic!(
        "conformance violation: proto={} seed={} fault-plan-seed={}\n{listing}\
         replay exactly this seed with:\n  NSERVER_REPLAY_SEED={} cargo test -q -p conformance\n\
         shrunken counterexample ({runs} shrink runs; parseable via Schedule::parse):\n{}",
        sched.proto_name(),
        sched.seed,
        sched.plan.seed,
        sched.seed,
        shrunk.serialize(),
    );
}

impl Schedule {
    fn proto_name(&self) -> &'static str {
        match self.proto {
            Proto::Http => "http",
            Proto::Ftp => "ftp",
        }
    }
}

/// Coverage summary returned by [`explore`].
#[derive(Debug)]
pub struct ExploreSummary {
    /// Schedules executed.
    pub runs: usize,
    /// Distinct schedule fingerprints among them.
    pub distinct_schedules: usize,
}

/// Generate and run one schedule per seed, panicking with a shrunken,
/// replayable counterexample on the first violation.
pub fn explore(proto: Proto, seeds: impl IntoIterator<Item = u64>) -> ExploreSummary {
    explore_with(proto, seeds, generate, |s| run(s).violations)
}

/// [`explore`] under the virtual clock, over schedules produced by
/// `gen` (e.g. [`crate::schedule::generate_stall_heavy`]).
pub fn explore_virtual(
    proto: Proto,
    seeds: impl IntoIterator<Item = u64>,
    gen_schedule: fn(Proto, u64) -> Schedule,
) -> ExploreSummary {
    explore_with(proto, seeds, gen_schedule, |s| {
        run_virtual(s).report.violations
    })
}

fn explore_with(
    proto: Proto,
    seeds: impl IntoIterator<Item = u64>,
    gen_schedule: fn(Proto, u64) -> Schedule,
    run_one: impl Fn(&Schedule) -> Vec<Violation>,
) -> ExploreSummary {
    let mut fingerprints = HashSet::new();
    let mut runs = 0;
    for seed in seeds {
        let sched = gen_schedule(proto, seed);
        fingerprints.insert(sched.fingerprint());
        runs += 1;
        let violations = run_one(&sched);
        if !violations.is_empty() {
            fail_with_counterexample(&sched, &violations, &|s| !run_one(s).is_empty());
        }
    }
    ExploreSummary {
        runs,
        distinct_schedules: fingerprints.len(),
    }
}

/// The seed set for an exploration test. `NSERVER_REPLAY_SEED=n` narrows
/// every suite to exactly seed `n` (the counterexample replay workflow);
/// `NSERVER_CONF_SEED_SPAN=lo..hi` widens the sweep (the CI extended
/// run); otherwise `default_lo..default_hi`.
pub fn seed_range(default_lo: u64, default_hi: u64) -> Vec<u64> {
    if let Ok(s) = std::env::var("NSERVER_REPLAY_SEED") {
        let seed = s
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("NSERVER_REPLAY_SEED={s:?} is not a u64: {e}"));
        return vec![seed];
    }
    if let Ok(s) = std::env::var("NSERVER_CONF_SEED_SPAN") {
        let (lo, hi) = s
            .split_once("..")
            .unwrap_or_else(|| panic!("NSERVER_CONF_SEED_SPAN={s:?} is not lo..hi"));
        let lo: u64 = lo.trim().parse().expect("span lo");
        let hi: u64 = hi.trim().parse().expect("span hi");
        return (lo..hi).collect();
    }
    (default_lo..default_hi).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{ConnScript, Step};
    use nserver_core::fault::FaultPlan;

    fn two_conn_schedule() -> Schedule {
        Schedule {
            proto: Proto::Http,
            seed: 0,
            plan: FaultPlan {
                reset_per_mille: 100,
                ..FaultPlan::new(5)
            },
            conns: vec![
                ConnScript {
                    segments: vec![b"GET /a HTTP/1.1\r\n".to_vec(), b"\r\n".to_vec()],
                    close_early: true,
                    data_ops: vec![],
                },
                ConnScript {
                    segments: vec![b"GET /b HTTP/1.1\r\n\r\n".to_vec()],
                    close_early: false,
                    data_ops: vec![],
                },
            ],
            order: vec![
                Step {
                    conn: 0,
                    pause_ms: 1,
                },
                Step {
                    conn: 1,
                    pause_ms: 0,
                },
                Step {
                    conn: 0,
                    pause_ms: 2,
                },
            ],
        }
    }

    #[test]
    fn shrink_reaches_a_minimal_failing_form() {
        // Synthetic oracle: "fails" whenever conn 0's script mentions /a.
        let fails = |s: &Schedule| {
            s.conns
                .iter()
                .any(|c| c.bytes().windows(2).any(|w| w == b"/a"))
        };
        let orig = two_conn_schedule();
        assert!(fails(&orig));
        let (shrunk, runs) = shrink(&orig, &fails, 100);
        assert!(fails(&shrunk), "shrinking must preserve the failure");
        assert!(runs > 0);
        assert_eq!(shrunk.conns.len(), 1, "irrelevant conn dropped");
        assert_eq!(shrunk.plan.reset_per_mille, 0, "irrelevant knob zeroed");
        assert!(shrunk.order.iter().all(|s| s.pause_ms == 0));
        assert!(!shrunk.conns[0].close_early);
        shrunk.check_consistency().expect("shrunk stays consistent");
        assert!(
            shrunk.conns[0].bytes().len() < orig.conns[0].bytes().len(),
            "byte-level shrinking happened"
        );
    }

    #[test]
    fn shrink_respects_the_run_budget() {
        let (_, runs) = shrink(&two_conn_schedule(), &|_| true, 7);
        assert!(runs <= 7);
    }

    #[test]
    fn virtual_pacing_delivers_everything_without_sleeping() {
        let mut sched = two_conn_schedule();
        sched.plan = FaultPlan::new(5); // no faults: verdicts must be clean
        for st in &mut sched.order {
            st.pause_ms = 200; // 600ms of scheduled pauses
        }
        let started = Instant::now();
        let v = run_virtual(&sched);
        assert!(
            v.report.violations.is_empty(),
            "virtual run must stay conforming: {:?}",
            v.report.violations
        );
        assert_eq!(v.timeline.virtual_elapsed_ms, 600);
        assert_eq!(v.timeline.deliveries.len(), sched.order.len());
        assert!(
            started.elapsed() < Duration::from_millis(590),
            "virtual pacing must not sleep the pauses away"
        );
    }

    #[test]
    fn seed_range_defaults_and_env_overrides() {
        assert_eq!(seed_range(3, 6), vec![3, 4, 5]);
        std::env::set_var("NSERVER_CONF_SEED_SPAN", "10..13");
        assert_eq!(seed_range(3, 6), vec![10, 11, 12]);
        std::env::set_var("NSERVER_REPLAY_SEED", "42");
        assert_eq!(seed_range(3, 6), vec![42], "replay wins over span");
        std::env::remove_var("NSERVER_REPLAY_SEED");
        std::env::remove_var("NSERVER_CONF_SEED_SPAN");
    }
}
