//! LRU-MIN replacement (Abrams et al., "Caching Proxies: Limitations and
//! Potentials", VT TR-95-12 — reference [1] of the paper).

use std::collections::HashMap;

use crate::policy::{EntryId, EntryMeta, ReplacementPolicy};

/// LRU-MIN tries to minimise the *number* of documents evicted: to make
/// room for an incoming document of size `S`, it first looks for cached
/// documents of size ≥ `S` and evicts the least recently used of those.
/// If there is none, it halves the threshold (`S/2`, `S/4`, …) and repeats,
/// eventually falling back to plain LRU over everything.
#[derive(Debug, Default)]
pub struct LruMin {
    entries: HashMap<EntryId, (u64, u64)>, // id -> (size, last_access)
}

impl LruMin {
    /// Create an empty LRU-MIN policy.
    pub fn new() -> Self {
        Self::default()
    }

    fn lru_among(&self, min_size: u64) -> Option<EntryId> {
        self.entries
            .iter()
            .filter(|(_, (size, _))| *size >= min_size)
            .min_by_key(|(id, (_, la))| (*la, **id))
            .map(|(id, _)| *id)
    }
}

impl ReplacementPolicy for LruMin {
    fn name(&self) -> &'static str {
        "LRU-MIN"
    }

    fn on_insert(&mut self, id: EntryId, meta: &EntryMeta) {
        self.entries.insert(id, (meta.size, meta.last_access));
    }

    fn on_access(&mut self, id: EntryId, meta: &EntryMeta) {
        self.entries.insert(id, (meta.size, meta.last_access));
    }

    fn on_remove(&mut self, id: EntryId) {
        self.entries.remove(&id);
    }

    fn choose_victim(&mut self, incoming_size: u64) -> Option<EntryId> {
        let mut threshold = incoming_size;
        loop {
            if let Some(victim) = self.lru_among(threshold) {
                return Some(victim);
            }
            if threshold == 0 {
                // No entry at all.
                return None;
            }
            threshold /= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(size: u64, t: u64) -> EntryMeta {
        EntryMeta {
            size,
            last_access: t,
            access_count: 1,
            inserted_at: t,
        }
    }

    #[test]
    fn prefers_documents_at_least_incoming_size() {
        let mut p = LruMin::new();
        p.on_insert(1, &meta(100, 0)); // big, oldest
        p.on_insert(2, &meta(10, 1)); // small
        p.on_insert(3, &meta(200, 2)); // big, newer
                                       // Incoming 100-byte doc: candidates of size >= 100 are {1, 3};
                                       // evict the LRU of those, i.e. 1 — even though 2 is overall LRU? No:
                                       // 1 is oldest overall anyway. Make 2 the overall-LRU instead:
        p.on_access(1, &meta(100, 3));
        // Now overall LRU is 2 (t=1) but LRU-MIN must pick among {1,3}: 3 (t=2).
        assert_eq!(p.choose_victim(100), Some(3));
    }

    #[test]
    fn halves_threshold_until_candidates_exist() {
        let mut p = LruMin::new();
        p.on_insert(1, &meta(10, 0));
        p.on_insert(2, &meta(20, 1));
        // Incoming 100: nothing >= 100, nothing >= 50, nothing >= 25,
        // at >= 12 only entry 2 qualifies.
        assert_eq!(p.choose_victim(100), Some(2));
    }

    #[test]
    fn falls_back_to_plain_lru() {
        let mut p = LruMin::new();
        p.on_insert(1, &meta(3, 5));
        p.on_insert(2, &meta(3, 4));
        // Threshold decays to a level both satisfy; LRU of all is 2.
        assert_eq!(p.choose_victim(1000), Some(2));
    }

    #[test]
    fn empty_returns_none() {
        let mut p = LruMin::new();
        assert_eq!(p.choose_victim(100), None);
        assert_eq!(p.choose_victim(0), None);
    }

    #[test]
    fn remove_untracks() {
        let mut p = LruMin::new();
        p.on_insert(1, &meta(100, 0));
        p.on_remove(1);
        assert_eq!(p.choose_victim(10), None);
    }
}
