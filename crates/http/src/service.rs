//! The Handle Request hook for COPS-HTTP: static file serving through the
//! transparent file cache.
//!
//! The flow mirrors the paper's generated server: a cache hit replies
//! immediately from memory; a miss issues an (emulated) non-blocking file
//! read via `Action::Defer`, which the framework routes to the Proactor
//! helper pool under O4 = Asynchronous. The cache itself is the O6
//! machinery from `nserver-cache`, with LRU enforced for COPS-HTTP.

use std::sync::Arc;

use nserver_cache::SharedFileCache;
use nserver_core::pipeline::{Action, ConnCtx, Service};

use crate::codec::HttpCodec;
use crate::types::{mime_for, Method, Request, Response, Status};

/// Where file bytes come from on a cache miss.
pub trait ContentStore: Send + Sync + 'static {
    /// Load a file's bytes by URL path, or `None` if it does not exist.
    fn load(&self, path: &str) -> Option<Arc<Vec<u8>>>;
}

/// A directory-backed store (the production backend).
pub struct DiskStore {
    root: std::path::PathBuf,
}

impl DiskStore {
    /// Serve files under `root`.
    pub fn new(root: impl Into<std::path::PathBuf>) -> Self {
        Self { root: root.into() }
    }
}

impl ContentStore for DiskStore {
    fn load(&self, path: &str) -> Option<Arc<Vec<u8>>> {
        let rel = path.trim_start_matches('/');
        let full = self.root.join(rel);
        std::fs::read(full).ok().map(Arc::new)
    }
}

/// An in-memory store (tests and benchmarks).
#[derive(Default)]
pub struct MemStore {
    files: std::collections::HashMap<String, Arc<Vec<u8>>>,
}

impl MemStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a file.
    pub fn insert(&mut self, path: impl Into<String>, data: Vec<u8>) {
        self.files.insert(path.into(), Arc::new(data));
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

impl ContentStore for MemStore {
    fn load(&self, path: &str) -> Option<Arc<Vec<u8>>> {
        // Emulate disk latency? No — the Proactor pool provides the
        // blocking context; tests keep this instantaneous.
        self.files.get(path).cloned()
    }
}

/// The COPS-HTTP application service: static files with optional cache.
pub struct StaticFileService<St: ContentStore> {
    store: Arc<St>,
    cache: Option<SharedFileCache<String>>,
    /// Artificial per-miss disk latency (emulates slow disk in tests).
    miss_latency_ms: u64,
}

impl<St: ContentStore> StaticFileService<St> {
    /// Serve from `store`, optionally through a cache (template option O6).
    pub fn new(store: St, cache: Option<SharedFileCache<String>>) -> Self {
        Self {
            store: Arc::new(store),
            cache,
            miss_latency_ms: 0,
        }
    }

    /// Add artificial latency to cache misses (testing aid).
    pub fn with_miss_latency_ms(mut self, ms: u64) -> Self {
        self.miss_latency_ms = ms;
        self
    }

    /// The cache handle, if caching is enabled.
    pub fn cache(&self) -> Option<&SharedFileCache<String>> {
        self.cache.as_ref()
    }

    fn sanitize(target: &str) -> Option<&str> {
        // Strip a query string; refuse path traversal.
        let path = target.split('?').next().unwrap_or(target);
        if path.contains("..") || !path.starts_with('/') {
            None
        } else {
            Some(path)
        }
    }
}

impl<St: ContentStore> Service<HttpCodec> for StaticFileService<St> {
    fn handle(&self, _ctx: &ConnCtx, req: Request) -> Action<Response> {
        let keep_alive = req.keep_alive();
        let head = req_is_head(&req);
        let version = req.version;
        let respond = move |resp: Response| {
            let resp = resp.with_keep_alive(keep_alive);
            let resp = if head { resp.head() } else { resp };
            if keep_alive {
                Action::Reply(resp)
            } else {
                Action::ReplyClose(resp)
            }
        };

        let path = match Self::sanitize(&req.target) {
            Some(p) => p.to_string(),
            None => return respond(Response::error(Status::Forbidden, version)),
        };

        // Cache hit: reply without any blocking operation.
        if let Some(cache) = &self.cache {
            if let Some(data) = cache.get(&path) {
                return respond(Response::ok(data, mime_for(&path), req.version));
            }
        }

        // Cache miss (or no cache): the file read is a blocking operation —
        // defer it so the event loop never blocks (Proactor emulation).
        let store = Arc::clone(&self.store);
        let cache = self.cache.clone();
        let miss_latency = self.miss_latency_ms;
        let path2 = path.clone();
        let job = move || {
            if miss_latency > 0 {
                std::thread::sleep(std::time::Duration::from_millis(miss_latency));
            }
            match store.load(&path2) {
                Some(data) => {
                    if let Some(cache) = &cache {
                        cache.insert(path2.clone(), Arc::clone(&data));
                    }
                    let resp = Response::ok(data, mime_for(&path2), version)
                        .with_keep_alive(true);
                    if head {
                        resp.head()
                    } else {
                        resp
                    }
                }
                None => Response::error(Status::NotFound, version),
            }
        };
        // Keep-alive decision applies to deferred replies too.
        if keep_alive {
            Action::Defer(Box::new(move || job().with_keep_alive(true)))
        } else {
            Action::DeferClose(Box::new(move || job().with_keep_alive(false)))
        }
    }
}

fn req_is_head(req: &Request) -> bool {
    req.method == Method::Head
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Headers, Version};
    use nserver_cache::{FileCache, PolicyKind};
    use nserver_core::event::Priority;

    fn ctx() -> ConnCtx {
        ConnCtx {
            id: 1,
            peer: "test".into(),
            priority: Priority::HIGHEST,
        }
    }

    fn get(target: &str) -> Request {
        Request {
            method: Method::Get,
            target: target.into(),
            version: Version::Http11,
            headers: Headers::new(),
        }
    }

    fn store() -> MemStore {
        let mut s = MemStore::new();
        s.insert("/index.html", b"<html>home</html>".to_vec());
        s.insert("/big.bin", vec![7u8; 4096]);
        s
    }

    fn run_action(action: Action<Response>) -> (Response, bool) {
        match action {
            Action::Reply(r) => (r, false),
            Action::ReplyClose(r) => (r, true),
            Action::Defer(job) => (job(), false),
            Action::DeferClose(job) => (job(), true),
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn serves_file_via_deferred_read_then_cache_hit() {
        // The sharded handle is the production configuration; aggregate
        // stats must look exactly like the single-lock cache's.
        let cache =
            SharedFileCache::sharded(1 << 20, PolicyKind::Lru, nserver_cache::DEFAULT_SHARDS);
        let svc = StaticFileService::new(store(), Some(cache.clone()));
        // First access: miss -> Defer.
        let action = svc.handle(&ctx(), get("/index.html"));
        assert!(matches!(action, Action::Defer(_)));
        let (resp, _) = run_action(action);
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(&**resp.body, b"<html>home</html>");
        // Second access: hit -> immediate Reply.
        let action = svc.handle(&ctx(), get("/index.html"));
        assert!(matches!(action, Action::Reply(_)));
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn missing_file_is_404() {
        let svc = StaticFileService::new(store(), None);
        let (resp, _) = run_action(svc.handle(&ctx(), get("/nope.html")));
        assert_eq!(resp.status, Status::NotFound);
    }

    #[test]
    fn path_traversal_is_forbidden() {
        let svc = StaticFileService::new(store(), None);
        let (resp, _) = run_action(svc.handle(&ctx(), get("/../etc/passwd")));
        assert_eq!(resp.status, Status::Forbidden);
    }

    #[test]
    fn query_strings_are_stripped() {
        let svc = StaticFileService::new(store(), None);
        let (resp, _) = run_action(svc.handle(&ctx(), get("/index.html?v=2")));
        assert_eq!(resp.status, Status::Ok);
    }

    #[test]
    fn connection_close_requests_reply_close() {
        let svc = StaticFileService::new(store(), None);
        let mut headers = Headers::new();
        headers.push("Connection", "close");
        let req = Request {
            method: Method::Get,
            target: "/index.html".into(),
            version: Version::Http11,
            headers,
        };
        let action = svc.handle(&ctx(), req);
        let (resp, closed) = run_action(action);
        assert!(closed);
        assert!(!resp.keep_alive);
    }

    #[test]
    fn head_requests_mark_head_only() {
        let svc = StaticFileService::new(store(), None);
        let req = Request {
            method: Method::Head,
            target: "/index.html".into(),
            version: Version::Http11,
            headers: Headers::new(),
        };
        let (resp, _) = run_action(svc.handle(&ctx(), req));
        assert!(resp.head_only);
        assert_eq!(resp.status, Status::Ok);
    }

    #[test]
    fn mime_type_follows_extension() {
        let svc = StaticFileService::new(store(), None);
        let (resp, _) = run_action(svc.handle(&ctx(), get("/index.html")));
        assert_eq!(resp.headers.get("content-type"), Some("text/html"));
        let (resp, _) = run_action(svc.handle(&ctx(), get("/big.bin")));
        assert_eq!(
            resp.headers.get("content-type"),
            Some("application/octet-stream")
        );
    }

    #[test]
    fn disk_store_reads_real_files() {
        let dir = std::env::temp_dir().join(format!("nserver-http-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("f.txt"), b"disk bytes").unwrap();
        let store = DiskStore::new(&dir);
        assert_eq!(&**store.load("/f.txt").unwrap(), b"disk bytes");
        assert!(store.load("/missing").is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_capacity_limits_residency() {
        let cache = SharedFileCache::new(FileCache::new(4096, PolicyKind::Lru));
        let svc = StaticFileService::new(store(), Some(cache.clone()));
        let (_, _) = run_action(svc.handle(&ctx(), get("/big.bin"))); // 4096 bytes fills it
        let (_, _) = run_action(svc.handle(&ctx(), get("/index.html")));
        assert!(cache.used_bytes() <= 4096);
    }
}
