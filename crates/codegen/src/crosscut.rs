//! The option × class crosscut matrix (the paper's Table 2).
//!
//! Table 2 is the paper's argument for generation over a static framework:
//! almost every option crosscuts several classes, so a framework
//! supporting all combinations dynamically would be riddled with
//! indirection. Since our [`crate::fragments::registry`] stores the same
//! facts as data, the matrix here is *derived*, never hand-maintained.

use crate::fragments::{registry, OptionId};

/// A marker in one matrix cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mark {
    /// The option determines whether the class exists (`O`).
    Gates,
    /// The generated code of the class depends on the option value (`+`).
    Affects,
    /// No dependence.
    None,
}

impl Mark {
    fn symbol(self) -> &'static str {
        match self {
            Mark::Gates => "O",
            Mark::Affects => "+",
            Mark::None => ".",
        }
    }
}

/// The full matrix: one row per class, one column per option.
#[derive(Debug, Clone)]
pub struct CrosscutMatrix {
    /// Row labels (class names in Table 2 order).
    pub classes: Vec<&'static str>,
    /// `cells[row][col]`.
    pub cells: Vec<Vec<Mark>>,
}

impl CrosscutMatrix {
    /// Build the matrix from the fragment registry.
    pub fn build() -> Self {
        let mut classes = Vec::new();
        let mut cells = Vec::new();
        for spec in registry() {
            classes.push(spec.name);
            let row = OptionId::ALL
                .iter()
                .map(|&opt| {
                    if spec.gate.map(|g| g.option()) == Some(opt) {
                        Mark::Gates
                    } else if spec.affected_by.contains(&opt) {
                        Mark::Affects
                    } else {
                        Mark::None
                    }
                })
                .collect();
            cells.push(row);
        }
        Self { classes, cells }
    }

    /// Number of non-empty cells (total crosscut dependencies).
    pub fn dependency_count(&self) -> usize {
        self.cells
            .iter()
            .flatten()
            .filter(|m| !matches!(m, Mark::None))
            .count()
    }

    /// How many classes an option touches (gate or affect).
    pub fn classes_touched(&self, opt: OptionId) -> usize {
        let col = OptionId::ALL.iter().position(|&o| o == opt).unwrap();
        self.cells
            .iter()
            .filter(|row| !matches!(row[col], Mark::None))
            .count()
    }
}

/// Render the matrix as an aligned text table (the Table 2 reproduction).
pub fn render_matrix(m: &CrosscutMatrix) -> String {
    let name_w = m.classes.iter().map(|c| c.len()).max().unwrap_or(10) + 1;
    let mut out = String::new();
    out.push_str(&format!("{:<name_w$}", "Class \\ Option"));
    for opt in OptionId::ALL {
        out.push_str(&format!("{:>4}", opt.label()));
    }
    out.push('\n');
    for (name, row) in m.classes.iter().zip(&m.cells) {
        out.push_str(&format!("{name:<name_w$}"));
        for mark in row {
            out.push_str(&format!("{:>4}", mark.symbol()));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_dimensions_match_table2() {
        let m = CrosscutMatrix::build();
        assert_eq!(m.classes.len(), 27);
        assert!(m.cells.iter().all(|r| r.len() == 12));
    }

    #[test]
    fn spot_check_paper_cells() {
        let m = CrosscutMatrix::build();
        let row = |name: &str| {
            let i = m.classes.iter().position(|&c| c == name).unwrap();
            &m.cells[i]
        };
        // Event: + at O4 and O8, nothing else.
        let event = row("Event");
        assert_eq!(event[3], Mark::Affects); // O4
        assert_eq!(event[7], Mark::Affects); // O8
        assert_eq!(event.iter().filter(|m| **m != Mark::None).count(), 2);
        // Completion Event: O at O4.
        assert_eq!(row("Completion Event")[3], Mark::Gates);
        // Cache: O at O6, + at O11.
        let cache = row("Cache");
        assert_eq!(cache[5], Mark::Gates);
        assert_eq!(cache[10], Mark::Affects);
        // Server Configuration: only O10.
        let sc = row("Server Configuration");
        assert_eq!(sc[9], Mark::Affects);
        assert_eq!(sc.iter().filter(|m| **m != Mark::None).count(), 1);
    }

    #[test]
    fn every_option_crosscuts_at_least_one_class() {
        let m = CrosscutMatrix::build();
        for opt in OptionId::ALL {
            assert!(
                m.classes_touched(opt) >= 1,
                "{} touches no class",
                opt.label()
            );
        }
        // O10 (debug mode) is the most pervasive crosscut in Table 2.
        assert!(m.classes_touched(OptionId::O10) >= 15);
    }

    #[test]
    fn rendering_is_complete_and_aligned() {
        let m = CrosscutMatrix::build();
        let text = render_matrix(&m);
        assert_eq!(text.lines().count(), 28); // header + 27 rows
        assert!(text.contains("Reactor"));
        assert!(text.contains("O12"));
        let widths: Vec<usize> = text.lines().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "misaligned table");
    }

    #[test]
    fn dependency_count_is_substantial() {
        // The crosscutting argument: dozens of (class, option) pairs.
        let m = CrosscutMatrix::build();
        assert!(m.dependency_count() > 80, "{}", m.dependency_count());
    }
}
