//! The byte-bounded file cache that the generated framework embeds when
//! template option O6 is enabled.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::policy::{EntryId, EntryMeta, PolicyKind, ReplacementPolicy};

/// Cache statistics, feeding the performance-profiling option (O11): the
/// paper explicitly lists "the file cache hit rate" among the statistics a
/// profiled N-Server gathers automatically.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the entry resident.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Insertions refused by the policy's admission test.
    pub rejected: u64,
    /// Bytes evicted over the cache lifetime.
    pub evicted_bytes: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Component-wise accumulation (used to aggregate per-shard stats).
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.rejected += other.rejected;
        self.evicted_bytes += other.evicted_bytes;
    }
}

struct Entry<K> {
    key: K,
    data: Arc<Vec<u8>>,
    meta: EntryMeta,
}

/// A byte-capacity-bounded in-memory file cache with a pluggable
/// replacement policy.
///
/// Values are `Arc<Vec<u8>>` so a hit hands out a cheap shared reference —
/// the server can keep sending a file that has since been evicted.
pub struct FileCache<K: Eq + Hash + Clone> {
    capacity: u64,
    used: u64,
    clock: u64,
    next_id: EntryId,
    ids: HashMap<K, EntryId>,
    entries: HashMap<EntryId, Entry<K>>,
    policy: Box<dyn ReplacementPolicy>,
    stats: CacheStats,
}

impl<K: Eq + Hash + Clone> FileCache<K> {
    /// Create a cache bounded to `capacity` bytes with a built-in policy.
    pub fn new(capacity: u64, policy: PolicyKind) -> Self {
        Self::with_policy(capacity, policy.build())
    }

    /// Create a cache with an arbitrary (possibly custom) policy object.
    pub fn with_policy(capacity: u64, policy: Box<dyn ReplacementPolicy>) -> Self {
        Self {
            capacity,
            used: 0,
            clock: 0,
            next_id: 0,
            ids: HashMap::new(),
            entries: HashMap::new(),
            policy,
            stats: CacheStats::default(),
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Look up a file. Counts a hit or miss and refreshes recency/frequency.
    pub fn get<Q>(&mut self, key: &Q) -> Option<Arc<Vec<u8>>>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        let now = self.tick();
        if let Some(&id) = self.ids.get(key) {
            let entry = self.entries.get_mut(&id).expect("id map out of sync");
            entry.meta.last_access = now;
            entry.meta.access_count += 1;
            let meta = entry.meta;
            let data = Arc::clone(&entry.data);
            self.policy.on_access(id, &meta);
            self.stats.hits += 1;
            Some(data)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Look up a file without counting a hit or miss (recency and
    /// frequency are still refreshed). Used by [`SharedFileCache`]'s
    /// single-flight path, whose callers have already counted the miss
    /// that brought them here.
    pub fn get_quiet<Q>(&mut self, key: &Q) -> Option<Arc<Vec<u8>>>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        let now = self.tick();
        let &id = self.ids.get(key)?;
        let entry = self.entries.get_mut(&id).expect("id map out of sync");
        entry.meta.last_access = now;
        entry.meta.access_count += 1;
        let meta = entry.meta;
        let data = Arc::clone(&entry.data);
        self.policy.on_access(id, &meta);
        Some(data)
    }

    /// Check residency without perturbing statistics or recency.
    pub fn contains<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.ids.contains_key(key)
    }

    /// Insert (or replace) a file. Returns `false` when the policy's
    /// admission test refused the object (e.g. LRU-Threshold and oversized
    /// documents) — the caller then serves the bytes without caching them.
    pub fn insert(&mut self, key: K, data: Arc<Vec<u8>>) -> bool {
        let size = data.len() as u64;
        if !self.policy.admits(size, self.capacity) {
            self.stats.rejected += 1;
            return false;
        }
        // An object that cannot fit even in an empty cache must be
        // refused up front: letting the eviction loop below discover it
        // would flush every resident entry first and then fail anyway.
        if size > self.capacity {
            self.stats.rejected += 1;
            return false;
        }
        // Replacing an existing entry: drop the old one first.
        if let Some(&id) = self.ids.get(&key) {
            self.remove_id(id, false);
        }
        // Evict until the newcomer fits.
        while self.used + size > self.capacity {
            match self.policy.choose_victim(size) {
                Some(victim) => self.remove_id(victim, true),
                None => return false, // nothing left to evict; cannot fit
            }
        }
        let now = self.tick();
        let id = self.next_id;
        self.next_id += 1;
        let meta = EntryMeta {
            size,
            last_access: now,
            access_count: 1,
            inserted_at: now,
        };
        self.ids.insert(key.clone(), id);
        self.entries.insert(id, Entry { key, data, meta });
        self.used += size;
        self.policy.on_insert(id, &meta);
        true
    }

    /// Explicitly invalidate a file (e.g. after it changed on disk).
    pub fn invalidate<Q>(&mut self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        if let Some(&id) = self.ids.get(key) {
            self.remove_id(id, false);
            true
        } else {
            false
        }
    }

    fn remove_id(&mut self, id: EntryId, is_eviction: bool) {
        if let Some(entry) = self.entries.remove(&id) {
            self.ids.remove(&entry.key);
            self.used -= entry.meta.size;
            self.policy.on_remove(id);
            if is_eviction {
                self.stats.evictions += 1;
                self.stats.evicted_bytes += entry.meta.size;
            }
        }
    }

    /// Bytes currently resident.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Configured capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Name of the active replacement policy.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }
}

/// Default shard count for [`SharedFileCache::sharded`].
pub const DEFAULT_SHARDS: usize = 8;

/// Thread-safe cache handle shared between event-processor workers.
///
/// The cache is partitioned into independent shards, each behind its own
/// lock, with keys routed by `hash(key) % shards`. Workers touching
/// different shards never contend; a single global lock would serialize
/// every worker of the Event Processor (O2) behind one mutex on the file
/// hot path (O6). Capacity is split evenly across shards, so the byte
/// bound still holds globally — the tradeoff is that no single object
/// larger than `capacity / shards` can be cached.
#[derive(Clone)]
pub struct SharedFileCache<K: Eq + Hash + Clone> {
    shards: Arc<Vec<Mutex<FileCache<K>>>>,
    /// Single-flight table: keys whose fetch is currently in progress.
    /// The first missing worker (the *leader*) runs the fetch; everyone
    /// else arriving before it finishes waits on the flight's condvar and
    /// shares the leader's result `Arc` — a thundering herd of N misses
    /// for one path issues exactly one store load.
    inflight: Arc<Mutex<HashMap<K, Arc<Flight>>>>,
    /// Lookups that were served by waiting on another worker's in-flight
    /// fetch instead of issuing their own.
    coalesced: Arc<AtomicU64>,
}

/// One in-progress fetch: waiters block on `cv` until the leader fills
/// `result` and flips `done`.
#[derive(Default)]
struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

#[derive(Default)]
struct FlightState {
    done: bool,
    result: Option<Arc<Vec<u8>>>,
}

impl<K: Eq + Hash + Clone> SharedFileCache<K> {
    /// Wrap a single pre-built cache for shared use (one shard). This is
    /// the path for custom policy objects, which cannot be replicated
    /// across shards.
    pub fn new(cache: FileCache<K>) -> Self {
        Self {
            shards: Arc::new(vec![Mutex::new(cache)]),
            inflight: Arc::new(Mutex::new(HashMap::new())),
            coalesced: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Build a sharded cache: `shards` independent partitions (≥ 1), each
    /// running its own instance of the built-in `policy` over an even
    /// split of `capacity`.
    pub fn sharded(capacity: u64, policy: PolicyKind, shards: usize) -> Self {
        let n = shards.max(1) as u64;
        let base = capacity / n;
        let remainder = capacity % n;
        let shards = (0..n)
            // Spread the rounding remainder so the shard capacities sum
            // exactly to `capacity`.
            .map(|i| base + u64::from(i < remainder))
            .map(|cap| Mutex::new(FileCache::new(cap, policy)))
            .collect();
        Self {
            shards: Arc::new(shards),
            inflight: Arc::new(Mutex::new(HashMap::new())),
            coalesced: Arc::new(AtomicU64::new(0)),
        }
    }

    fn shard_for<Q>(&self, key: &Q) -> &Mutex<FileCache<K>>
    where
        Q: Hash + ?Sized,
    {
        use std::hash::Hasher;
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() % self.shards.len() as u64) as usize]
    }

    /// Number of independent partitions.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// See [`FileCache::get`].
    pub fn get<Q>(&self, key: &Q) -> Option<Arc<Vec<u8>>>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.shard_for(key).lock().get(key)
    }

    /// See [`FileCache::insert`].
    pub fn insert(&self, key: K, data: Arc<Vec<u8>>) -> bool {
        self.shard_for(&key).lock().insert(key, data)
    }

    /// Single-flight lookup: return the cached bytes for `key`, running
    /// `fetch` at most once across all workers missing concurrently.
    ///
    /// The first worker to miss becomes the leader: it runs `fetch`
    /// (typically a blocking disk read on a Proactor helper thread),
    /// inserts the result, and wakes every waiter. Workers that arrive
    /// while the fetch is in flight block on the flight's condvar and
    /// share the leader's `Arc` — counted in
    /// [`SharedFileCache::coalesced_waits`]. A fetch that returns `None`
    /// (file absent) propagates `None` to the whole herd; a fetch that
    /// panics wakes the herd with `None` before the panic resumes on the
    /// leader, so no waiter blocks forever.
    pub fn get_or_load<F>(&self, key: K, fetch: F) -> Option<Arc<Vec<u8>>>
    where
        F: FnOnce() -> Option<Arc<Vec<u8>>>,
    {
        // Quiet re-check: the caller usually counted the miss that got it
        // here, and the object may have landed since.
        if let Some(data) = self.shard_for(&key).lock().get_quiet(&key) {
            return Some(data);
        }
        let (flight, leader) = {
            let mut inflight = self.inflight.lock();
            match inflight.get(&key) {
                Some(f) => (Arc::clone(f), false),
                None => {
                    let f = Arc::new(Flight::default());
                    inflight.insert(key.clone(), Arc::clone(&f));
                    (f, true)
                }
            }
        };
        if !leader {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            let mut st = flight.state.lock();
            while !st.done {
                flight.cv.wait(&mut st);
            }
            return st.result.clone();
        }
        // Leader: run the fetch outside every lock. A panic must still
        // release the herd, so trap it, publish `None`, then resume.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(fetch));
        let value = match &outcome {
            Ok(v) => v.clone(),
            Err(_) => None,
        };
        if let Some(data) = &value {
            self.insert(key.clone(), Arc::clone(data));
        }
        {
            let mut st = flight.state.lock();
            st.done = true;
            st.result = value.clone();
        }
        flight.cv.notify_all();
        self.inflight.lock().remove(&key);
        match outcome {
            Ok(_) => value,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }

    /// Lookups served by joining another worker's in-flight fetch (see
    /// [`SharedFileCache::get_or_load`]).
    pub fn coalesced_waits(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// See [`FileCache::invalidate`].
    pub fn invalidate<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.shard_for(key).lock().invalidate(key)
    }

    /// Aggregate statistics summed over every shard.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in self.shards.iter() {
            total.merge(&shard.lock().stats());
        }
        total
    }

    /// Bytes resident, summed over every shard.
    pub fn used_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().used_bytes()).sum()
    }

    /// Configured capacity, summed over every shard.
    pub fn capacity_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().capacity_bytes()).sum()
    }

    /// Resident entries, summed over every shard.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when no shard holds any entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::CustomPolicy;

    fn blob(n: usize) -> Arc<Vec<u8>> {
        Arc::new(vec![0xAB; n])
    }

    #[test]
    fn hit_and_miss_counting() {
        let mut c = FileCache::new(100, PolicyKind::Lru);
        assert!(c.get(&"x").is_none());
        c.insert("x", blob(10));
        assert!(c.get(&"x").is_some());
        assert!(c.get(&"y").is_none());
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_never_exceeded_on_lru() {
        let mut c = FileCache::new(100, PolicyKind::Lru);
        for i in 0..20 {
            c.insert(i, blob(30));
            assert!(c.used_bytes() <= 100);
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().evictions, 17);
    }

    #[test]
    fn lru_eviction_order_through_cache() {
        let mut c = FileCache::new(100, PolicyKind::Lru);
        c.insert("a", blob(40));
        c.insert("b", blob(40));
        c.get(&"a"); // refresh a
        c.insert("c", blob(40)); // evicts b
        assert!(c.contains(&"a"));
        assert!(!c.contains(&"b"));
        assert!(c.contains(&"c"));
    }

    #[test]
    fn replacing_a_key_reuses_space() {
        let mut c = FileCache::new(100, PolicyKind::Lru);
        c.insert("a", blob(60));
        c.insert("a", blob(80));
        assert_eq!(c.used_bytes(), 80);
        assert_eq!(c.len(), 1);
        // Replacement is not an eviction.
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn threshold_policy_rejects_oversized_insert() {
        let mut c = FileCache::new(
            1000,
            PolicyKind::LruThreshold {
                max_size_permille: 100,
            },
        );
        assert!(!c.insert("big", blob(500)));
        assert!(c.insert("small", blob(100)));
        assert_eq!(c.stats().rejected, 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn object_larger_than_capacity_is_never_cached() {
        let mut c = FileCache::new(50, PolicyKind::Lru);
        assert!(!c.insert("huge", blob(51)));
        assert!(c.is_empty());
    }

    #[test]
    fn oversized_insert_leaves_hot_cache_untouched() {
        // Regression: an object larger than the whole cache used to run
        // the eviction loop dry — flushing every resident entry — before
        // the insert failed anyway.
        let mut c = FileCache::new(100, PolicyKind::Lru);
        c.insert("a", blob(30));
        c.insert("b", blob(30));
        c.insert("c", blob(30));
        assert!(!c.insert("huge", blob(101)));
        let s = c.stats();
        assert_eq!(s.evictions, 0, "oversized insert must not evict");
        assert_eq!(s.rejected, 1, "oversized insert counts as rejected");
        assert!(c.contains(&"a"));
        assert!(c.contains(&"b"));
        assert!(c.contains(&"c"));
        assert_eq!(c.used_bytes(), 90);
    }

    #[test]
    fn oversized_insert_does_not_displace_replaced_key() {
        let mut c = FileCache::new(100, PolicyKind::Lru);
        c.insert("a", blob(60));
        // Replacing "a" with an impossible size must keep the old entry.
        assert!(!c.insert("a", blob(200)));
        assert!(c.contains(&"a"));
        assert_eq!(c.used_bytes(), 60);
    }

    #[test]
    fn get_quiet_refreshes_recency_without_stats() {
        let mut c = FileCache::new(100, PolicyKind::Lru);
        c.insert("a", blob(40));
        c.insert("b", blob(40));
        assert!(c.get_quiet(&"a").is_some());
        assert!(c.get_quiet(&"zzz").is_none());
        let s = c.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 0);
        // The quiet touch still made "a" most-recent, so "b" is evicted.
        c.insert("c", blob(40));
        assert!(c.contains(&"a"));
        assert!(!c.contains(&"b"));
    }

    #[test]
    fn invalidate_removes_without_counting_eviction() {
        let mut c = FileCache::new(100, PolicyKind::Lfu);
        c.insert("a", blob(10));
        assert!(c.invalidate(&"a"));
        assert!(!c.invalidate(&"a"));
        assert_eq!(c.used_bytes(), 0);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn hit_hands_out_shared_data() {
        let mut c = FileCache::new(100, PolicyKind::Lru);
        c.insert("a", blob(10));
        let d1 = c.get(&"a").unwrap();
        // Evict "a" and confirm the handed-out Arc stays valid.
        c.insert("b", blob(95));
        assert!(!c.contains(&"a"));
        assert_eq!(d1.len(), 10);
    }

    #[test]
    fn custom_policy_plugs_in() {
        // Evict the biggest file first.
        let policy = CustomPolicy::new(|entries, _| {
            entries
                .iter()
                .max_by_key(|(_, m)| m.size)
                .map(|(id, _)| *id)
        });
        let mut c = FileCache::with_policy(100, Box::new(policy));
        c.insert("small", blob(10));
        c.insert("big", blob(80));
        c.insert("mid", blob(50)); // must evict "big"
        assert!(c.contains(&"small"));
        assert!(!c.contains(&"big"));
        assert!(c.contains(&"mid"));
        assert_eq!(c.policy_name(), "Custom");
    }

    #[test]
    fn all_policies_respect_capacity_under_zipfish_trace() {
        for kind in PolicyKind::all() {
            let mut c = FileCache::new(10_000, kind);
            for i in 0u64..500 {
                // Skewed popularity: half the accesses go to 3 hot keys.
                let key = if i % 2 == 0 { i % 3 } else { i % 37 };
                let size = 100 + (key % 13) * 120;
                if c.get(&key).is_none() {
                    c.insert(key, blob(size as usize));
                }
                assert!(
                    c.used_bytes() <= 10_000,
                    "{} exceeded capacity",
                    kind.name()
                );
            }
            let s = c.stats();
            assert!(s.hits > 0, "{} never hit", kind.name());
        }
    }

    #[test]
    fn shared_cache_is_cloneable_and_consistent() {
        let shared = SharedFileCache::new(FileCache::new(100, PolicyKind::Lru));
        let other = shared.clone();
        shared.insert("k".to_string(), blob(10));
        assert!(other.get("k").is_some());
        assert_eq!(other.stats().hits, 1);
        assert_eq!(shared.used_bytes(), 10);
    }

    #[test]
    fn shared_cache_concurrent_access() {
        use std::thread;
        let shared = SharedFileCache::new(FileCache::new(50_000, PolicyKind::Lru));
        let mut handles = Vec::new();
        for t in 0..4 {
            let c = shared.clone();
            handles.push(thread::spawn(move || {
                for i in 0..200u64 {
                    let key = t * 1000 + i % 20;
                    if c.get(&key).is_none() {
                        c.insert(key, Arc::new(vec![0u8; 64]));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(shared.used_bytes() <= 50_000);
    }

    #[test]
    fn sharded_cache_splits_capacity_exactly() {
        let c: SharedFileCache<u64> = SharedFileCache::sharded(1003, PolicyKind::Lru, 8);
        assert_eq!(c.shard_count(), 8);
        assert_eq!(c.capacity_bytes(), 1003);
        let single: SharedFileCache<u64> =
            SharedFileCache::new(FileCache::new(100, PolicyKind::Lru));
        assert_eq!(single.shard_count(), 1);
        let zero: SharedFileCache<u64> = SharedFileCache::sharded(100, PolicyKind::Lru, 0);
        assert_eq!(zero.shard_count(), 1);
    }

    #[test]
    fn sharded_cache_routes_keys_consistently() {
        let c: SharedFileCache<String> = SharedFileCache::sharded(8_000, PolicyKind::Lru, 8);
        for i in 0..50 {
            assert!(c.insert(format!("/file/{i}"), blob(10)));
        }
        for i in 0..50 {
            // Borrowed-form lookups must land on the same shard as the
            // owned-key inserts (Borrow guarantees equal hashes).
            assert!(c.get(&format!("/file/{i}")[..]).is_some(), "lost /file/{i}");
        }
        assert_eq!(c.len(), 50);
        assert_eq!(c.used_bytes(), 500);
        let s = c.stats();
        assert_eq!(s.hits, 50);
        assert_eq!(s.misses, 0);
    }

    #[test]
    fn sharded_cache_aggregates_stats_across_shards() {
        let c: SharedFileCache<u64> = SharedFileCache::sharded(4_000, PolicyKind::Lru, 4);
        for k in 0..40u64 {
            c.insert(k, blob(50));
        }
        for k in 0..40u64 {
            c.get(&k);
        }
        for k in 1000..1010u64 {
            c.get(&k);
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 50);
        assert_eq!(s.misses, 10);
        assert!((s.hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn sharded_cache_respects_global_capacity_under_pressure() {
        let c: SharedFileCache<u64> = SharedFileCache::sharded(10_000, PolicyKind::Lru, 8);
        for k in 0..500u64 {
            c.insert(k, blob(100));
            assert!(c.used_bytes() <= 10_000);
        }
        assert!(c.stats().evictions > 0, "pressure must evict");
        assert!(!c.is_empty());
    }

    #[test]
    fn sharded_cache_invalidate_hits_the_owning_shard() {
        let c: SharedFileCache<String> = SharedFileCache::sharded(8_000, PolicyKind::Lru, 8);
        c.insert("victim".to_string(), blob(10));
        assert!(c.invalidate("victim"));
        assert!(!c.invalidate("victim"));
        assert!(c.get("victim").is_none());
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn single_flight_issues_one_fetch_for_a_racing_herd() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Barrier;
        use std::thread;

        let cache: SharedFileCache<String> =
            SharedFileCache::sharded(1 << 20, PolicyKind::Lru, DEFAULT_SHARDS);
        let fetches = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(8));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = cache.clone();
            let fetches = Arc::clone(&fetches);
            let barrier = Arc::clone(&barrier);
            handles.push(thread::spawn(move || {
                barrier.wait();
                cache.get_or_load("/hot.bin".to_string(), || {
                    fetches.fetch_add(1, Ordering::SeqCst);
                    // Hold the flight open long enough for the rest of
                    // the herd to pile up behind the leader.
                    thread::sleep(std::time::Duration::from_millis(50));
                    Some(Arc::new(vec![7u8; 1024]))
                })
            }));
        }
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(
            fetches.load(Ordering::SeqCst),
            1,
            "a herd of 8 misses must issue exactly one fetch"
        );
        for r in &results {
            let data = r.as_ref().expect("every waiter shares the result");
            assert_eq!(data.len(), 1024);
            // All callers share the leader's allocation.
            assert!(Arc::ptr_eq(data, results[0].as_ref().unwrap()));
        }
        assert!(cache.coalesced_waits() > 0, "waiters were coalesced");
        assert!(cache.get("/hot.bin").is_some(), "result was cached");
    }

    #[test]
    fn single_flight_propagates_absent_files_to_the_herd() {
        let cache: SharedFileCache<String> = SharedFileCache::sharded(4096, PolicyKind::Lru, 2);
        let got = cache.get_or_load("/missing".to_string(), || None);
        assert!(got.is_none());
        assert!(cache.get("/missing").is_none(), "absence is not cached");
        // The flight is cleaned up: a later call fetches again.
        let got = cache.get_or_load("/missing".to_string(), || Some(Arc::new(vec![1])));
        assert!(got.is_some());
    }

    #[test]
    fn single_flight_panicking_fetch_releases_waiters() {
        use std::thread;
        let cache: SharedFileCache<String> = SharedFileCache::sharded(4096, PolicyKind::Lru, 2);
        let c2 = cache.clone();
        let leader = thread::spawn(move || {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                c2.get_or_load("/boom".to_string(), || panic!("disk exploded"))
            }));
            assert!(r.is_err(), "the leader re-raises the fetch panic");
        });
        leader.join().unwrap();
        // The flight must not be left dangling: a fresh call runs anew.
        let got = cache.get_or_load("/boom".to_string(), || Some(Arc::new(vec![2])));
        assert_eq!(got.unwrap().as_slice(), &[2]);
    }

    #[test]
    fn sharded_cache_concurrent_workers_stay_bounded() {
        use std::thread;
        let shared: SharedFileCache<u64> =
            SharedFileCache::sharded(50_000, PolicyKind::Lru, DEFAULT_SHARDS);
        let mut handles = Vec::new();
        for t in 0..8 {
            let c = shared.clone();
            handles.push(thread::spawn(move || {
                for i in 0..500u64 {
                    let key = (t * 31 + i) % 200;
                    if c.get(&key).is_none() {
                        c.insert(key, Arc::new(vec![0u8; 64]));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(shared.used_bytes() <= 50_000);
        let s = shared.stats();
        assert!(s.hits > 0);
    }
}
