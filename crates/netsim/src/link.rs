//! A shared-bandwidth FIFO link with MTU framing.
//!
//! Models the testbed's bottleneck: "a switched Gigabit Ethernet connects
//! the clients and servers. The maximal packet size of the Ethernet switch
//! is 1500 bytes … the actual network bandwidth is limited to something
//! slightly higher than 100 MBits/sec". The link is a fluid store-and-
//! forward pipe: each message is serialized at link rate behind everything
//! queued before it, so saturation produces realistic queueing delay growth.

use crate::time::SimTime;

/// Shared FIFO link.
#[derive(Debug, Clone)]
pub struct Link {
    bits_per_sec: u64,
    /// Per-packet protocol overhead in bytes (Ethernet + IP + TCP headers).
    header_bytes: u64,
    /// Maximum payload bytes per packet (MTU minus headers).
    payload_per_packet: u64,
    /// One-way propagation + switching latency added to every message.
    propagation: SimTime,
    busy_until: SimTime,
    busy_accum_us: u64,
    bytes_carried: u64,
    messages: u64,
}

impl Link {
    /// A link with the given line rate, 1500-byte MTU and 40-byte headers.
    pub fn new(bits_per_sec: u64) -> Self {
        Self::with_frame(bits_per_sec, 1500, 40, SimTime::from_micros(100))
    }

    /// Fully parameterised construction: `mtu` is the maximal packet size,
    /// `header_bytes` the per-packet overhead (payload per packet is
    /// `mtu - header_bytes`), `propagation` the one-way latency.
    pub fn with_frame(
        bits_per_sec: u64,
        mtu: u64,
        header_bytes: u64,
        propagation: SimTime,
    ) -> Self {
        assert!(bits_per_sec > 0, "link needs positive bandwidth");
        assert!(mtu > header_bytes, "MTU must exceed header size");
        Self {
            bits_per_sec,
            header_bytes,
            payload_per_packet: mtu - header_bytes,
            propagation,
            busy_until: SimTime::ZERO,
            busy_accum_us: 0,
            bytes_carried: 0,
            messages: 0,
        }
    }

    /// Bytes actually put on the wire for a payload of `payload` bytes,
    /// including per-packet headers (a zero-byte message still costs one
    /// packet — e.g. a bare ACK or SYN).
    pub fn wire_bytes(&self, payload: u64) -> u64 {
        let packets = payload.div_ceil(self.payload_per_packet).max(1);
        payload + packets * self.header_bytes
    }

    /// Transmission (serialization) time for a payload, excluding queueing
    /// and propagation.
    pub fn tx_time(&self, payload: u64) -> SimTime {
        let bits = self.wire_bytes(payload) * 8;
        SimTime::from_micros(bits * 1_000_000 / self.bits_per_sec)
    }

    /// Enqueue a message at `now`; returns its arrival time at the far end
    /// (queueing + serialization + propagation).
    pub fn send(&mut self, now: SimTime, payload: u64) -> SimTime {
        let start = self.busy_until.max(now);
        let tx = self.tx_time(payload);
        self.busy_until = start + tx;
        self.busy_accum_us += tx.as_micros();
        self.bytes_carried += payload;
        self.messages += 1;
        self.busy_until + self.propagation
    }

    /// How long a message enqueued at `now` would wait before its first bit
    /// is transmitted.
    pub fn queue_delay(&self, now: SimTime) -> SimTime {
        self.busy_until.saturating_sub(now)
    }

    /// Fraction of `elapsed` time the link spent transmitting.
    pub fn utilization(&self, elapsed: SimTime) -> f64 {
        if elapsed == SimTime::ZERO {
            0.0
        } else {
            self.busy_accum_us as f64 / elapsed.as_micros() as f64
        }
    }

    /// Total payload bytes carried.
    pub fn bytes_carried(&self) -> u64 {
        self.bytes_carried
    }

    /// Total messages carried.
    pub fn messages(&self) -> u64 {
        self.messages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbit(n: u64) -> u64 {
        n * 1_000_000
    }

    #[test]
    fn wire_bytes_includes_per_packet_headers() {
        let l = Link::new(mbit(100));
        // 1460 payload = 1 packet = 1500 wire bytes.
        assert_eq!(l.wire_bytes(1460), 1500);
        // 1461 payload = 2 packets.
        assert_eq!(l.wire_bytes(1461), 1461 + 80);
        // Empty message still costs one header.
        assert_eq!(l.wire_bytes(0), 40);
    }

    #[test]
    fn tx_time_matches_line_rate() {
        let l = Link::new(mbit(100));
        // 1500 wire bytes at 100 Mbit/s = 120 µs.
        assert_eq!(l.tx_time(1460), SimTime::from_micros(120));
    }

    #[test]
    fn fifo_queueing_serializes_messages() {
        let mut l = Link::with_frame(mbit(100), 1500, 40, SimTime::ZERO);
        let t1 = l.send(SimTime::ZERO, 1460);
        let t2 = l.send(SimTime::ZERO, 1460);
        assert_eq!(t1, SimTime::from_micros(120));
        assert_eq!(t2, SimTime::from_micros(240));
        assert_eq!(l.queue_delay(SimTime::ZERO), SimTime::from_micros(240));
    }

    #[test]
    fn idle_link_has_no_queue_delay() {
        let mut l = Link::with_frame(mbit(100), 1500, 40, SimTime::ZERO);
        l.send(SimTime::ZERO, 1460);
        assert_eq!(l.queue_delay(SimTime::from_millis(5)), SimTime::ZERO);
        let t = l.send(SimTime::from_millis(5), 1460);
        assert_eq!(t, SimTime::from_micros(5120));
    }

    #[test]
    fn propagation_adds_to_arrival_not_occupancy() {
        let mut l = Link::with_frame(mbit(100), 1500, 40, SimTime::from_millis(1));
        let t1 = l.send(SimTime::ZERO, 1460);
        assert_eq!(t1, SimTime::from_micros(120) + SimTime::from_millis(1));
        // Second message queues behind serialization only, not propagation.
        let t2 = l.send(SimTime::ZERO, 1460);
        assert_eq!(t2, SimTime::from_micros(240) + SimTime::from_millis(1));
    }

    #[test]
    fn utilization_and_counters() {
        let mut l = Link::with_frame(mbit(100), 1500, 40, SimTime::ZERO);
        l.send(SimTime::ZERO, 1460);
        l.send(SimTime::ZERO, 1460);
        assert_eq!(l.bytes_carried(), 2920);
        assert_eq!(l.messages(), 2);
        let u = l.utilization(SimTime::from_micros(480));
        assert!((u - 0.5).abs() < 1e-9, "utilization {u}");
    }

    #[test]
    fn saturation_grows_queue_delay_linearly() {
        let mut l = Link::with_frame(mbit(100), 1500, 40, SimTime::ZERO);
        // Offer 2x capacity for a while.
        let mut last = SimTime::ZERO;
        for i in 0..100 {
            let now = SimTime::from_micros(i * 60); // every 60µs, 120µs each
            last = l.send(now, 1460);
        }
        // Arrival of last message far exceeds its enqueue time.
        assert!(last > SimTime::from_micros(100 * 60 + 120 * 10));
    }
}
