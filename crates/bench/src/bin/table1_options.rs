//! Table 1 — N-Server options and their values, with the COPS-FTP and
//! COPS-HTTP columns produced from the presets actually used to build the
//! two servers.

use nserver_bench::{render_table, write_csv};
use nserver_ftp::cops_ftp_options;
use nserver_http::cops_http_options;

fn main() {
    let ftp = cops_ftp_options();
    let http = cops_http_options();
    let legal: [&str; 12] = [
        "1 or 2N",
        "Yes/No",
        "Yes/No",
        "Asynchronous/Synchronous",
        "Dynamic/Static",
        "Yes/No",
        "Yes/No",
        "Yes/No",
        "Yes/No",
        "Production/Debug",
        "Yes/No",
        "Yes/No",
    ];
    let ftp_rows = ftp.describe();
    let http_rows = http.describe();

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for i in 0..12 {
        let (name, ftp_v) = &ftp_rows[i];
        let (_, http_v) = &http_rows[i];
        rows.push(vec![
            name.to_string(),
            legal[i].to_string(),
            ftp_v.clone(),
            http_v.clone(),
        ]);
        csv.push(format!("{name},{},{ftp_v},{http_v}", legal[i]));
    }

    println!("TABLE 1 — N-SERVER OPTIONS AND THEIR VALUES");
    println!(
        "{}",
        render_table(
            &["Option Name", "Legal Values", "COPS-FTP", "COPS-HTTP"],
            &rows
        )
    );
    println!("Notes (as in the paper):");
    println!("  O6: cache policies LRU, LFU, LRU-MIN, LRU-Threshold, Hyper-G or Custom.");
    println!("  O8/O9: enabled only in the second/third COPS-HTTP experiment");
    println!("         (see cops_http_scheduling_options / cops_http_overload_options).");
    println!("  O10/O11: Debug and Profiling were used during development/tuning.");

    write_csv(
        "table1_options.csv",
        "option,legal,cops_ftp,cops_http",
        &csv,
    );
}
