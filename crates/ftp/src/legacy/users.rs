//! User registry — part of the reusable library layer (Apache FTPServer's
//! user management, minus the LDAP/GUI trimmings the paper's Table 3
//! removed).

use std::collections::HashMap;

use parking_lot::RwLock;

/// Account database with optional anonymous access.
#[derive(Default)]
pub struct UserRegistry {
    accounts: RwLock<HashMap<String, String>>,
    allow_anonymous: bool,
}

impl UserRegistry {
    /// Empty registry; anonymous access disabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enable the `anonymous` account (any password accepted).
    pub fn with_anonymous(mut self) -> Self {
        self.allow_anonymous = true;
        self
    }

    /// Add (or replace) an account.
    pub fn add_user(&self, name: impl Into<String>, password: impl Into<String>) {
        self.accounts.write().insert(name.into(), password.into());
    }

    /// Whether a user name is known (anonymous counts when enabled).
    pub fn knows(&self, name: &str) -> bool {
        (self.allow_anonymous && name.eq_ignore_ascii_case("anonymous"))
            || self.accounts.read().contains_key(name)
    }

    /// Check credentials.
    pub fn authenticate(&self, name: &str, password: &str) -> bool {
        if self.allow_anonymous && name.eq_ignore_ascii_case("anonymous") {
            return true;
        }
        self.accounts
            .read()
            .get(name)
            .is_some_and(|p| p == password)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn password_checked() {
        let reg = UserRegistry::new();
        reg.add_user("alice", "secret");
        assert!(reg.knows("alice"));
        assert!(reg.authenticate("alice", "secret"));
        assert!(!reg.authenticate("alice", "wrong"));
        assert!(!reg.authenticate("bob", "secret"));
        assert!(!reg.knows("bob"));
    }

    #[test]
    fn anonymous_when_enabled() {
        let reg = UserRegistry::new().with_anonymous();
        assert!(reg.knows("anonymous"));
        assert!(reg.knows("ANONYMOUS"));
        assert!(reg.authenticate("anonymous", "anything"));
        let strict = UserRegistry::new();
        assert!(!strict.authenticate("anonymous", "x"));
    }

    #[test]
    fn replacing_account_updates_password() {
        let reg = UserRegistry::new();
        reg.add_user("u", "one");
        reg.add_user("u", "two");
        assert!(!reg.authenticate("u", "one"));
        assert!(reg.authenticate("u", "two"));
    }
}
