//! Relay/cluster differential: the same sanitized schedule driven over
//! real TCP against a direct backend and against the cluster front end
//! must produce client-observably equivalent traces — including runs
//! where a dead backend forces the relay's retry-rotation.

use conformance::{relay_differential, seed_range, Proto};

#[test]
fn http_relay_is_trace_equivalent_to_direct() {
    for seed in seed_range(40000, 40040) {
        let rep = relay_differential(Proto::Http, seed, false);
        assert!(rep.equivalent(), "seed {seed}: {:#?}", rep.divergences);
        assert_eq!(rep.backend_failures, 0);
    }
}

#[test]
fn ftp_relay_is_trace_equivalent_to_direct() {
    for seed in seed_range(41000, 41040) {
        let rep = relay_differential(Proto::Ftp, seed, false);
        assert!(rep.equivalent(), "seed {seed}: {:#?}", rep.divergences);
        assert_eq!(rep.backend_failures, 0);
    }
}

#[test]
fn http_relay_failover_preserves_equivalence() {
    for seed in seed_range(42000, 42015) {
        let rep = relay_differential(Proto::Http, seed, true);
        assert!(rep.equivalent(), "seed {seed}: {:#?}", rep.divergences);
        assert!(
            rep.dial_retries >= 1,
            "seed {seed}: dead-first rotation must be retried"
        );
        assert_eq!(
            rep.backend_failures, 0,
            "seed {seed}: retry must rescue every client"
        );
    }
}

#[test]
fn ftp_relay_failover_preserves_equivalence() {
    for seed in seed_range(43000, 43015) {
        let rep = relay_differential(Proto::Ftp, seed, true);
        assert!(rep.equivalent(), "seed {seed}: {:#?}", rep.divergences);
        assert!(
            rep.dial_retries >= 1,
            "seed {seed}: failover never happened"
        );
        assert_eq!(rep.backend_failures, 0);
    }
}
