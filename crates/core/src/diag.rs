//! Flight-recorder diagnostics: worker health, anomaly detection, and
//! triggered snapshots.
//!
//! The paper's O10 debug crosscut keeps a bounded event trace "to get a
//! snapshot of what happened during the time an error condition occurred"
//! — but it cannot answer *what is each worker doing right now*, nor
//! notice on its own that something is wrong. This module adds the three
//! missing pieces:
//!
//! 1. A [`WorkerStateTable`]: every pool worker (and dispatcher) publishes
//!    its current activity — idle, or running `{stage, conn, since}` —
//!    through seqlock-style atomics. Writers never take a lock and never
//!    allocate; a reader retries the handful of times a torn read is even
//!    possible.
//! 2. A [`Watchdog`] thread that evaluates cheap invariants every tick:
//!    dispatcher liveness, a worker stuck-time ceiling, queue-depth
//!    saturation, and a sliding-window p99 SLO burn-rate.
//! 3. A [`DiagHub`] that aggregates every observability surface the
//!    server has (counters, histograms, trace ring, worker table, queue
//!    gauges, cache stats, overload state) and captures them as a JSON
//!    [`DiagSnapshot`] — into an in-memory ring of the last K snapshots
//!    plus an optional append-only file sink — whenever the watchdog
//!    fires or an operator asks.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::event::ConnId;
use crate::metrics::{
    json_escape, prometheus_text_with, CacheSample, ExpositionExtras, HistogramSnapshot,
    LatencySnapshot, MetricsRegistry, OverloadSample, Stage, WorkerGauges,
};
use crate::overload::OverloadController;
use crate::profiling::{ServerStats, StatsSnapshot};
use crate::trace::{DebugTracer, TraceRecord};

// ---------------------------------------------------------------------------
// Worker state table
// ---------------------------------------------------------------------------

const STATE_VACANT: u8 = 0;
const STATE_IDLE: u8 = 1;
const STATE_RUNNING: u8 = 2;

/// What kind of framework thread owns a table slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerRole {
    /// An Event Processor pool worker.
    Worker,
    /// A dispatcher thread (also handles events inline when O2 = No).
    Dispatcher,
}

impl WorkerRole {
    /// Stable exposition name.
    pub fn name(&self) -> &'static str {
        match self {
            WorkerRole::Worker => "worker",
            WorkerRole::Dispatcher => "dispatcher",
        }
    }
}

/// What a slot's owner was doing at sample time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerActivity {
    /// Between events.
    Idle,
    /// Executing a pipeline stage for a connection.
    Running {
        /// The stage being executed.
        stage: Stage,
        /// The connection being served.
        conn: ConnId,
        /// How long the stage has been running, in microseconds.
        busy_us: u64,
    },
}

/// One consistent row read out of the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSample {
    /// Slot index (stable for the thread's lifetime).
    pub slot: usize,
    /// Thread kind.
    pub role: WorkerRole,
    /// Activity at sample time.
    pub activity: WorkerActivity,
}

/// One seqlock-protected slot. The owning thread is the only writer, so
/// publication needs no compare-and-swap: bump the sequence odd, store
/// the fields, bump it even. A reader that observes an odd or changed
/// sequence retries.
struct Slot {
    seq: AtomicU64,
    state: AtomicU8,
    role: AtomicU8,
    stage: AtomicU8,
    conn: AtomicU64,
    since_us: AtomicU64,
}

impl Slot {
    fn vacant() -> Self {
        Self {
            seq: AtomicU64::new(0),
            state: AtomicU8::new(STATE_VACANT),
            role: AtomicU8::new(0),
            stage: AtomicU8::new(0),
            conn: AtomicU64::new(0),
            since_us: AtomicU64::new(0),
        }
    }
}

/// Fixed-capacity table of per-thread activity slots. Framework threads
/// register once, then stamp their activity through thread-local free
/// functions ([`stamp_stage`], [`stamp_idle`]) that cost a few relaxed
/// atomic stores — no locks, no allocation, so they are safe to leave on
/// the hot path in every mode.
pub struct WorkerStateTable {
    slots: Vec<Slot>,
    epoch: Instant,
}

impl WorkerStateTable {
    /// A table with room for `capacity` concurrent threads. Registration
    /// beyond capacity degrades gracefully: the extra threads simply do
    /// not appear in samples.
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            slots: (0..capacity.max(1)).map(|_| Slot::vacant()).collect(),
            epoch: Instant::now(),
        })
    }

    /// Microseconds since the table was created.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Claim a vacant slot for the calling thread. `None` when full.
    fn register(&self, role: WorkerRole) -> Option<usize> {
        for (i, slot) in self.slots.iter().enumerate() {
            if slot
                .state
                .compare_exchange(
                    STATE_VACANT,
                    STATE_IDLE,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                slot.role.store(
                    match role {
                        WorkerRole::Worker => 0,
                        WorkerRole::Dispatcher => 1,
                    },
                    Ordering::Relaxed,
                );
                return Some(i);
            }
        }
        None
    }

    /// Single-writer seqlock publication for slot `idx`.
    fn publish(&self, idx: usize, state: u8, stage: u8, conn: ConnId, since_us: u64) {
        let s = &self.slots[idx];
        let seq = s.seq.load(Ordering::Relaxed);
        s.seq.store(seq.wrapping_add(1), Ordering::Release); // odd: write in progress
        s.state.store(state, Ordering::Relaxed);
        s.stage.store(stage, Ordering::Relaxed);
        s.conn.store(conn, Ordering::Relaxed);
        s.since_us.store(since_us, Ordering::Relaxed);
        s.seq.store(seq.wrapping_add(2), Ordering::Release); // even: consistent
    }

    fn release(&self, idx: usize) {
        self.publish(idx, STATE_VACANT, 0, 0, 0);
    }

    /// Read every occupied slot consistently. Retries a torn row a few
    /// times, then takes it anyway — this is diagnostics, and a row torn
    /// four times in a microsecond-scale window is still approximately
    /// right.
    pub fn sample(&self) -> Vec<WorkerSample> {
        let now = self.now_us();
        let mut out = Vec::with_capacity(self.slots.len());
        for (i, s) in self.slots.iter().enumerate() {
            let mut row = (0u8, 0u8, 0u8, 0u64, 0u64);
            for _attempt in 0..4 {
                let s1 = s.seq.load(Ordering::Acquire);
                row = (
                    s.state.load(Ordering::Relaxed),
                    s.role.load(Ordering::Relaxed),
                    s.stage.load(Ordering::Relaxed),
                    s.conn.load(Ordering::Relaxed),
                    s.since_us.load(Ordering::Relaxed),
                );
                let s2 = s.seq.load(Ordering::Acquire);
                if s1 == s2 && s1 % 2 == 0 {
                    break;
                }
            }
            let (state, role, stage, conn, since_us) = row;
            if state == STATE_VACANT {
                continue;
            }
            let role = if role == 1 {
                WorkerRole::Dispatcher
            } else {
                WorkerRole::Worker
            };
            let activity = if state == STATE_RUNNING {
                WorkerActivity::Running {
                    stage: Stage::ALL[(stage as usize).min(Stage::ALL.len() - 1)],
                    conn,
                    busy_us: now.saturating_sub(since_us),
                }
            } else {
                WorkerActivity::Idle
            };
            out.push(WorkerSample {
                slot: i,
                role,
                activity,
            });
        }
        out
    }

    /// Occupancy gauges for the Prometheus exposition.
    pub fn gauges(&self) -> WorkerGauges {
        let mut g = WorkerGauges::default();
        for s in self.sample() {
            match s.activity {
                WorkerActivity::Running { .. } => g.running += 1,
                WorkerActivity::Idle => g.idle += 1,
            }
        }
        g
    }
}

/// The calling thread's table attachment.
struct Attachment {
    table: Arc<WorkerStateTable>,
    index: usize,
}

thread_local! {
    static ATTACHED: RefCell<Option<Attachment>> = const { RefCell::new(None) };
}

/// Attach the calling thread to `table` in the given role. Subsequent
/// [`stamp_stage`] / [`stamp_idle`] calls on this thread publish into its
/// slot. Returns `false` (and leaves stamping a no-op) when the table is
/// full or the thread is already attached.
pub fn attach_worker(table: &Arc<WorkerStateTable>, role: WorkerRole) -> bool {
    ATTACHED.with(|a| {
        let mut a = a.borrow_mut();
        if a.is_some() {
            return false;
        }
        match table.register(role) {
            Some(index) => {
                *a = Some(Attachment {
                    table: Arc::clone(table),
                    index,
                });
                true
            }
            None => false,
        }
    })
}

/// Release the calling thread's slot (exiting workers; harmless when
/// unattached).
pub fn detach_worker() {
    ATTACHED.with(|a| {
        if let Some(at) = a.borrow_mut().take() {
            at.table.release(at.index);
        }
    });
}

/// Publish "running `stage` for `conn` since now" for the calling
/// thread. A no-op on unattached threads (application threads, tests,
/// table-full overflow), which is what lets the pipeline call it
/// unconditionally.
pub fn stamp_stage(stage: Stage, conn: ConnId) {
    ATTACHED.with(|a| {
        if let Some(at) = a.borrow().as_ref() {
            let now = at.table.now_us();
            let idx = Stage::ALL.iter().position(|s| *s == stage).unwrap_or(0) as u8;
            at.table.publish(at.index, STATE_RUNNING, idx, conn, now);
        }
    });
}

/// Publish "idle" for the calling thread. No-op when unattached.
pub fn stamp_idle() {
    ATTACHED.with(|a| {
        if let Some(at) = a.borrow().as_ref() {
            let now = at.table.now_us();
            at.table.publish(at.index, STATE_IDLE, 0, 0, now);
        }
    });
}

// ---------------------------------------------------------------------------
// Diagnostic snapshots
// ---------------------------------------------------------------------------

/// Everything the server knows about itself at one instant, captured when
/// the watchdog fires or an operator asks. Serializes to JSON via
/// [`DiagSnapshot::to_json`].
#[derive(Debug, Clone)]
pub struct DiagSnapshot {
    /// Monotonic capture sequence number (1-based).
    pub seq: u64,
    /// Why the capture happened (`"on_demand"`, `"worker_stuck …"`, …).
    pub reason: String,
    /// Microseconds since the hub was created.
    pub at_us: u64,
    /// Counter snapshot (includes escaped-panic counts when wired).
    pub stats: StatsSnapshot,
    /// Latency histograms + queue gauges.
    pub latency: LatencySnapshot,
    /// Worker table rows.
    pub workers: Vec<WorkerSample>,
    /// Event queue length at capture.
    pub queue_len: usize,
    /// Workers parked waiting for events at capture.
    pub queue_waiters: usize,
    /// File-cache stats, when a provider is wired.
    pub cache: Option<CacheSample>,
    /// Overload controller state, when wired.
    pub overload: Option<OverloadSample>,
    /// Trace-ring records lost to overflow.
    pub trace_dropped: u64,
    /// Tail of the trace ring (newest last).
    pub recent_trace: Vec<TraceRecord>,
    /// Watchdog triggers up to and including this capture.
    pub watchdog_triggers: u64,
}

impl DiagSnapshot {
    /// Serialize as a single JSON object (hand-rolled; the workspace
    /// carries no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push('{');
        out.push_str(&format!("\"seq\":{},", self.seq));
        out.push_str(&format!("\"reason\":\"{}\",", json_escape(&self.reason)));
        out.push_str(&format!("\"at_us\":{},", self.at_us));
        out.push_str("\"counters\":{");
        let rows = self.stats.rows();
        for (i, (name, v)) in rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", name.replace(' ', "_")));
        }
        out.push_str("},\"stages\":{");
        for (i, stage) in Stage::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let h = self.latency.stage(*stage);
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"p50_us\":{},\"p99_us\":{}}}",
                stage.name(),
                h.count,
                h.quantile_us(0.5),
                h.quantile_us(0.99)
            ));
        }
        let qw = &self.latency.queue_wait;
        out.push_str(&format!(
            "}},\"queue\":{{\"len\":{},\"waiters\":{},\"depth_gauge\":{},\"high_water\":{},\"wait\":{{\"count\":{},\"p50_us\":{},\"p99_us\":{}}}}},",
            self.queue_len,
            self.queue_waiters,
            self.latency.queue_depth,
            self.latency.queue_depth_high_water,
            qw.count,
            qw.quantile_us(0.5),
            qw.quantile_us(0.99)
        ));
        out.push_str("\"workers\":[");
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match w.activity {
                WorkerActivity::Idle => out.push_str(&format!(
                    "{{\"slot\":{},\"role\":\"{}\",\"state\":\"idle\"}}",
                    w.slot,
                    w.role.name()
                )),
                WorkerActivity::Running {
                    stage,
                    conn,
                    busy_us,
                } => out.push_str(&format!(
                    "{{\"slot\":{},\"role\":\"{}\",\"state\":\"running\",\"stage\":\"{}\",\"conn\":{conn},\"busy_us\":{busy_us}}}",
                    w.slot,
                    w.role.name(),
                    stage.name()
                )),
            }
        }
        out.push_str("],");
        match &self.cache {
            Some(c) => out.push_str(&format!(
                "\"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"rejected\":{},\"coalesced_waits\":{},\"used_bytes\":{},\"capacity_bytes\":{}}},",
                c.hits, c.misses, c.evictions, c.rejected, c.coalesced_waits, c.used_bytes, c.capacity_bytes
            )),
            None => out.push_str("\"cache\":null,"),
        }
        match &self.overload {
            Some(o) => out.push_str(&format!(
                "\"overload\":{{\"paused\":{},\"pauses\":{},\"resumes\":{}}},",
                o.paused, o.pause_transitions, o.resume_transitions
            )),
            None => out.push_str("\"overload\":null,"),
        }
        out.push_str(&format!(
            "\"trace\":{{\"dropped\":{},\"recent\":[",
            self.trace_dropped
        ));
        for (i, r) in self.recent_trace.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let conn = r.conn.map_or("null".to_string(), |c| c.to_string());
            let event = r
                .span
                .map_or_else(|| "record".to_string(), |s| s.name().to_string());
            out.push_str(&format!(
                "{{\"at_us\":{},\"conn\":{conn},\"event\":\"{event}\",\"detail\":\"{}\"}}",
                r.at_us,
                json_escape(&r.detail_text())
            ));
        }
        out.push_str(&format!(
            "]}},\"watchdog\":{{\"triggers\":{}}}}}",
            self.watchdog_triggers
        ));
        out
    }
}

// ---------------------------------------------------------------------------
// Diagnostics hub
// ---------------------------------------------------------------------------

/// A closure producing current file-cache stats; the cache crate sits
/// above `nserver-core`, so applications plug a sampler in.
pub type CacheStatsProvider = Arc<dyn Fn() -> CacheSample + Send + Sync>;

/// How many trace records a snapshot carries.
const SNAPSHOT_TRACE_TAIL: usize = 64;

struct HubInner {
    stats: Arc<ServerStats>,
    metrics: Arc<MetricsRegistry>,
    /// Handler panics that escaped workers entirely (the Event Processor
    /// absorbs them outside the pipeline's own counter).
    extra_panics: Mutex<Option<Arc<dyn Fn() -> u64 + Send + Sync>>>,
    tracer: Mutex<Option<DebugTracer>>,
    workers: Mutex<Option<Arc<WorkerStateTable>>>,
    queue_len: Mutex<Option<Arc<AtomicUsize>>>,
    queue_waiters: Mutex<Option<Arc<dyn Fn() -> usize + Send + Sync>>>,
    overload: Mutex<Option<Arc<Mutex<OverloadController>>>>,
    cache: Mutex<Option<CacheStatsProvider>>,
    epoch: Instant,
    ring: Mutex<VecDeque<DiagSnapshot>>,
    ring_cap: AtomicUsize,
    file: Mutex<Option<PathBuf>>,
    snap_seq: AtomicU64,
    triggers: AtomicU64,
}

/// The aggregation point for every observability surface the server has.
/// Create one before `serve` (so HTTP routes / FTP services can hold it),
/// hand it to the builder, and the server wires its internals in during
/// assembly — the same injection idiom the stats and metrics registries
/// already use.
#[derive(Clone)]
pub struct DiagHub {
    inner: Arc<HubInner>,
}

impl DiagHub {
    /// A hub over the given counter + latency registries. Everything else
    /// is wired in later (by `serve`, or by tests).
    pub fn new(stats: Arc<ServerStats>, metrics: Arc<MetricsRegistry>) -> Self {
        Self {
            inner: Arc::new(HubInner {
                stats,
                metrics,
                extra_panics: Mutex::new(None),
                tracer: Mutex::new(None),
                workers: Mutex::new(None),
                queue_len: Mutex::new(None),
                queue_waiters: Mutex::new(None),
                overload: Mutex::new(None),
                cache: Mutex::new(None),
                epoch: Instant::now(),
                ring: Mutex::new(VecDeque::new()),
                ring_cap: AtomicUsize::new(8),
                file: Mutex::new(None),
                snap_seq: AtomicU64::new(0),
                triggers: AtomicU64::new(0),
            }),
        }
    }

    /// The counter registry the hub reads.
    pub fn stats(&self) -> &Arc<ServerStats> {
        &self.inner.stats
    }

    /// The latency registry the hub reads.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.inner.metrics
    }

    /// Wire the trace ring.
    pub fn wire_tracer(&self, tracer: DebugTracer) {
        *self.inner.tracer.lock() = Some(tracer);
    }

    /// Wire the worker state table.
    pub fn wire_workers(&self, table: Arc<WorkerStateTable>) {
        *self.inner.workers.lock() = Some(table);
    }

    /// The wired worker table, if any.
    pub fn workers(&self) -> Option<Arc<WorkerStateTable>> {
        self.inner.workers.lock().clone()
    }

    /// Wire the event-queue gauges: the shared length gauge plus a
    /// parked-waiter count provider.
    pub fn wire_queue(&self, len: Arc<AtomicUsize>, waiters: Arc<dyn Fn() -> usize + Send + Sync>) {
        *self.inner.queue_len.lock() = Some(len);
        *self.inner.queue_waiters.lock() = Some(waiters);
    }

    /// Wire the overload controller.
    pub fn wire_overload(&self, ctl: Arc<Mutex<OverloadController>>) {
        *self.inner.overload.lock() = Some(ctl);
    }

    /// Wire a supplement for handler panics that escaped the pipeline
    /// (the Event Processor's own catch).
    pub fn wire_extra_panics(&self, f: Arc<dyn Fn() -> u64 + Send + Sync>) {
        *self.inner.extra_panics.lock() = Some(f);
    }

    /// Plug in a file-cache stats provider (applications own the cache).
    pub fn set_cache_provider(&self, f: CacheStatsProvider) {
        *self.inner.cache.lock() = Some(f);
    }

    /// Keep the last `k` snapshots in memory (default 8).
    pub fn set_ring_capacity(&self, k: usize) {
        self.inner.ring_cap.store(k.max(1), Ordering::Relaxed);
    }

    /// Also append every captured snapshot (one JSON object per line) to
    /// `path`.
    pub fn set_snapshot_file(&self, path: PathBuf) {
        *self.inner.file.lock() = Some(path);
    }

    /// Counter snapshot, including escaped-panic supplements.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        let mut snap = self.inner.stats.snapshot();
        if let Some(f) = self.inner.extra_panics.lock().as_ref() {
            snap.handler_panics += f();
        }
        snap
    }

    /// Total watchdog invariant violations so far.
    pub fn watchdog_triggers(&self) -> u64 {
        self.inner.triggers.load(Ordering::Relaxed)
    }

    /// Snapshots captured so far (watchdog-triggered and on-demand).
    pub fn snapshots_captured(&self) -> u64 {
        self.inner.snap_seq.load(Ordering::Relaxed)
    }

    /// Record a watchdog trigger and capture a snapshot for it.
    pub fn note_trigger(&self, reason: &str) -> DiagSnapshot {
        self.inner.triggers.fetch_add(1, Ordering::Relaxed);
        self.capture(reason)
    }

    /// Capture a snapshot now, store it in the ring (and file sink, when
    /// set), and return it.
    pub fn capture(&self, reason: &str) -> DiagSnapshot {
        let seq = self.inner.snap_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let (trace_dropped, recent_trace) = match self.inner.tracer.lock().as_ref() {
            Some(t) => (t.dropped(), t.dump_tail(SNAPSHOT_TRACE_TAIL)),
            None => (0, Vec::new()),
        };
        let snap = DiagSnapshot {
            seq,
            reason: reason.to_string(),
            at_us: self.inner.epoch.elapsed().as_micros() as u64,
            stats: self.stats_snapshot(),
            latency: self.inner.metrics.latency_snapshot(),
            workers: self
                .inner
                .workers
                .lock()
                .as_ref()
                .map(|t| t.sample())
                .unwrap_or_default(),
            queue_len: self
                .inner
                .queue_len
                .lock()
                .as_ref()
                .map_or(0, |g| g.load(Ordering::Relaxed)),
            queue_waiters: self.inner.queue_waiters.lock().as_ref().map_or(0, |f| f()),
            cache: self.inner.cache.lock().as_ref().map(|f| f()),
            overload: self.inner.overload.lock().as_ref().map(|ctl| {
                let ctl = ctl.lock();
                OverloadSample {
                    paused: ctl.is_paused(),
                    pause_transitions: ctl.pause_transitions(),
                    resume_transitions: ctl.resume_transitions(),
                }
            }),
            trace_dropped,
            recent_trace,
            watchdog_triggers: self.inner.triggers.load(Ordering::Relaxed),
        };
        let mut ring = self.inner.ring.lock();
        let cap = self.inner.ring_cap.load(Ordering::Relaxed);
        while ring.len() >= cap {
            ring.pop_front();
        }
        ring.push_back(snap.clone());
        drop(ring);
        if let Some(path) = self.inner.file.lock().as_ref() {
            use std::io::Write as _;
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(f, "{}", snap.to_json());
            }
        }
        snap
    }

    /// The most recent snapshot, if any was captured.
    pub fn latest(&self) -> Option<DiagSnapshot> {
        self.inner.ring.lock().back().cloned()
    }

    /// All retained snapshots, oldest first.
    pub fn ring(&self) -> Vec<DiagSnapshot> {
        self.inner.ring.lock().iter().cloned().collect()
    }

    /// The optional exposition families the hub can fill today.
    pub fn extras(&self) -> ExpositionExtras {
        ExpositionExtras {
            cache: self.inner.cache.lock().as_ref().map(|f| f()),
            overload: self.inner.overload.lock().as_ref().map(|ctl| {
                let ctl = ctl.lock();
                OverloadSample {
                    paused: ctl.is_paused(),
                    pause_transitions: ctl.pause_transitions(),
                    resume_transitions: ctl.resume_transitions(),
                }
            }),
            trace_dropped: self.inner.tracer.lock().as_ref().map_or(0, |t| t.dropped()),
            workers: self.inner.workers.lock().as_ref().map(|t| t.gauges()),
            watchdog_triggers: Some(self.watchdog_triggers()),
            snapshots_captured: Some(self.snapshots_captured()),
        }
    }

    /// Full Prometheus exposition: core counters + histograms + every
    /// optional family the hub has wired.
    pub fn prometheus(&self) -> String {
        prometheus_text_with(
            &self.stats_snapshot(),
            &self.inner.metrics.latency_snapshot(),
            &self.extras(),
        )
    }
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

/// Watchdog tuning. The defaults are deliberately conservative: no SLO
/// (so no burn-rate triggers unless asked for), a multi-second stuck
/// ceiling, saturation only when a threshold is configured.
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// Invariant evaluation period.
    pub tick: Duration,
    /// A worker running one stage longer than this is stuck.
    pub stuck_ceiling: Duration,
    /// Consecutive ticks the dispatcher-wakeup counter may sit still
    /// (after an explicit ping) before the dispatcher counts as stalled.
    pub liveness_grace_ticks: u32,
    /// Queue length at or above which the queue counts as saturated.
    /// `None` disables the invariant (the server wires the O12 high
    /// watermark in when watermark overload control is on).
    pub queue_saturation: Option<usize>,
    /// Consecutive saturated ticks before firing.
    pub saturation_ticks: u32,
    /// Sliding-window p99 ceiling (µs) for `slo_stage`. `None` disables.
    pub p99_slo_us: Option<u64>,
    /// The stage the SLO applies to.
    pub slo_stage: Stage,
    /// Window length for the burn-rate diff, in ticks.
    pub slo_window_ticks: u32,
    /// Minimum new samples in the window before the SLO is judged.
    pub slo_min_samples: u64,
    /// Refractory period per invariant, in ticks: once fired, that
    /// invariant stays quiet this long (the condition usually persists
    /// across many ticks; one snapshot per episode is the useful rate).
    pub debounce_ticks: u64,
    /// In-memory snapshots to retain.
    pub snapshot_ring: usize,
    /// Optional JSON-lines snapshot sink.
    pub snapshot_file: Option<PathBuf>,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self {
            tick: Duration::from_millis(100),
            stuck_ceiling: Duration::from_secs(5),
            liveness_grace_ticks: 10,
            queue_saturation: None,
            saturation_ticks: 5,
            p99_slo_us: None,
            slo_stage: Stage::Handle,
            slo_window_ticks: 20,
            slo_min_samples: 16,
            debounce_ticks: 100,
            snapshot_ring: 8,
            snapshot_file: None,
        }
    }
}

/// Index of each invariant in the debounce table.
const INV_LIVENESS: usize = 0;
const INV_STUCK: usize = 1;
const INV_SATURATION: usize = 2;
const INV_SLO: usize = 3;
const INV_COUNT: usize = 4;

/// The running watchdog thread. Owned by the `ServerHandle`; stopped and
/// joined on shutdown.
pub struct Watchdog {
    stop: Arc<(Mutex<bool>, Condvar)>,
    thread: Option<JoinHandle<()>>,
    fired: Arc<AtomicBool>,
}

impl Watchdog {
    /// Start the watchdog over `hub`. `ping` (when given) is invoked to
    /// wake a dispatcher whenever the wakeup counter has not advanced —
    /// an idle server's counter legitimately sits still, so liveness is
    /// judged only on the response to an explicit ping.
    pub fn spawn(
        cfg: WatchdogConfig,
        hub: DiagHub,
        ping: Option<Arc<dyn Fn() + Send + Sync>>,
    ) -> Self {
        hub.set_ring_capacity(cfg.snapshot_ring);
        if let Some(path) = cfg.snapshot_file.clone() {
            hub.set_snapshot_file(path);
        }
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let fired = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            let fired = Arc::clone(&fired);
            std::thread::Builder::new()
                .name("nserver-watchdog".into())
                .spawn(move || watchdog_loop(cfg, hub, ping, stop, fired))
                .expect("spawn watchdog")
        };
        Self {
            stop,
            thread: Some(thread),
            fired,
        }
    }

    /// Whether any invariant has ever fired.
    pub fn has_fired(&self) -> bool {
        self.fired.load(Ordering::Relaxed)
    }

    /// Stop and join the watchdog thread.
    pub fn stop(&mut self) {
        let (lock, cvar) = &*self.stop;
        *lock.lock() = true;
        cvar.notify_all();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stop();
    }
}

fn watchdog_loop(
    cfg: WatchdogConfig,
    hub: DiagHub,
    ping: Option<Arc<dyn Fn() + Send + Sync>>,
    stop: Arc<(Mutex<bool>, Condvar)>,
    fired: Arc<AtomicBool>,
) {
    let mut tick_no: u64 = 0;
    let mut last_fired = [u64::MAX; INV_COUNT]; // MAX = never fired
    let mut last_wakeups = hub.stats_snapshot().dispatcher_wakeups;
    let mut pinged = false;
    let mut liveness_misses: u32 = 0;
    let mut saturated_ticks: u32 = 0;
    let mut slo_window: VecDeque<HistogramSnapshot> = VecDeque::new();
    loop {
        {
            let (lock, cvar) = &*stop;
            let mut stopped = lock.lock();
            if *stopped {
                return;
            }
            cvar.wait_for(&mut stopped, cfg.tick);
            if *stopped {
                return;
            }
        }
        tick_no += 1;
        let fire = |inv: usize, reason: String, tick_no: u64, last_fired: &mut [u64; INV_COUNT]| {
            let since = last_fired[inv];
            if since != u64::MAX && tick_no.saturating_sub(since) < cfg.debounce_ticks {
                return;
            }
            last_fired[inv] = tick_no;
            fired.store(true, Ordering::Relaxed);
            hub.note_trigger(&reason);
        };

        // 1. Dispatcher liveness: judge only the response to our ping.
        if let Some(ping) = &ping {
            let wakeups = hub.stats_snapshot().dispatcher_wakeups;
            if wakeups != last_wakeups {
                last_wakeups = wakeups;
                liveness_misses = 0;
                pinged = false;
            } else if pinged {
                liveness_misses += 1;
                if liveness_misses >= cfg.liveness_grace_ticks {
                    fire(
                        INV_LIVENESS,
                        format!(
                            "dispatcher_stalled wakeups={wakeups} ticks_without_response={liveness_misses}"
                        ),
                        tick_no,
                        &mut last_fired,
                    );
                    liveness_misses = 0;
                }
                ping();
            } else {
                ping();
                pinged = true;
            }
        }

        // 2. Worker stuck-time ceiling.
        if let Some(table) = hub.workers() {
            let ceiling_us = cfg.stuck_ceiling.as_micros() as u64;
            for w in table.sample() {
                if let WorkerActivity::Running {
                    stage,
                    conn,
                    busy_us,
                } = w.activity
                {
                    if busy_us > ceiling_us {
                        fire(
                            INV_STUCK,
                            format!(
                                "worker_stuck slot={} role={} stage={} conn={} busy_ms={}",
                                w.slot,
                                w.role.name(),
                                stage.name(),
                                conn,
                                busy_us / 1000
                            ),
                            tick_no,
                            &mut last_fired,
                        );
                        break;
                    }
                }
            }
        }

        // 3. Queue-depth saturation vs the configured watermark.
        if let Some(threshold) = cfg.queue_saturation {
            let len = hub
                .inner
                .queue_len
                .lock()
                .as_ref()
                .map_or(0, |g| g.load(Ordering::Relaxed));
            if len >= threshold {
                saturated_ticks += 1;
                if saturated_ticks >= cfg.saturation_ticks {
                    fire(
                        INV_SATURATION,
                        format!(
                            "queue_saturated len={len} threshold={threshold} ticks={saturated_ticks}"
                        ),
                        tick_no,
                        &mut last_fired,
                    );
                    saturated_ticks = 0;
                }
            } else {
                saturated_ticks = 0;
            }
        }

        // 4. Sliding-window p99 SLO burn-rate.
        if let Some(slo_us) = cfg.p99_slo_us {
            let now = *hub.metrics().latency_snapshot().stage(cfg.slo_stage);
            slo_window.push_back(now);
            while slo_window.len() > cfg.slo_window_ticks.max(2) as usize {
                slo_window.pop_front();
            }
            if slo_window.len() >= 2 {
                let oldest = slo_window.front().expect("non-empty window");
                let diff = now.saturating_sub(oldest);
                if diff.count >= cfg.slo_min_samples {
                    let p99 = diff.quantile_us(0.99);
                    if p99 > slo_us {
                        fire(
                            INV_SLO,
                            format!(
                                "slo_burn stage={} window_p99_us={p99} slo_us={slo_us} samples={}",
                                cfg.slo_stage.name(),
                                diff.count
                            ),
                            tick_no,
                            &mut last_fired,
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_hub() -> DiagHub {
        DiagHub::new(ServerStats::new_shared(), MetricsRegistry::enabled())
    }

    #[test]
    fn table_register_stamp_sample_roundtrip() {
        let table = WorkerStateTable::new(4);
        assert!(attach_worker(&table, WorkerRole::Worker));
        stamp_stage(Stage::Handle, 42);
        let rows = table.sample();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].role, WorkerRole::Worker);
        match rows[0].activity {
            WorkerActivity::Running { stage, conn, .. } => {
                assert_eq!(stage, Stage::Handle);
                assert_eq!(conn, 42);
            }
            WorkerActivity::Idle => panic!("expected running"),
        }
        stamp_idle();
        let rows = table.sample();
        assert_eq!(rows[0].activity, WorkerActivity::Idle);
        detach_worker();
        assert!(table.sample().is_empty(), "detach releases the slot");
    }

    #[test]
    fn unattached_stamping_is_a_noop() {
        // No attach on this thread: must not panic, must publish nothing.
        stamp_stage(Stage::Decode, 7);
        stamp_idle();
        detach_worker();
    }

    #[test]
    fn full_table_rejects_registration() {
        let table = WorkerStateTable::new(1);
        let t2 = Arc::clone(&table);
        let h = std::thread::spawn(move || {
            assert!(attach_worker(&t2, WorkerRole::Worker));
            // Hold the slot until told to release.
            std::thread::sleep(Duration::from_millis(50));
            detach_worker();
        });
        // Give the thread time to claim the only slot.
        while table.sample().is_empty() {
            std::thread::yield_now();
        }
        assert!(!attach_worker(&table, WorkerRole::Worker), "table is full");
        h.join().unwrap();
    }

    #[test]
    fn gauges_count_running_and_idle() {
        let table = WorkerStateTable::new(4);
        assert!(attach_worker(&table, WorkerRole::Dispatcher));
        stamp_stage(Stage::Encode, 1);
        let g = table.gauges();
        assert_eq!((g.running, g.idle), (1, 0));
        stamp_idle();
        let g = table.gauges();
        assert_eq!((g.running, g.idle), (0, 1));
        detach_worker();
    }

    #[test]
    fn concurrent_stampers_never_produce_torn_reads() {
        let table = WorkerStateTable::new(8);
        let stop = Arc::new(AtomicBool::new(false));
        let mut writers = Vec::new();
        for t in 0..4u64 {
            let table = Arc::clone(&table);
            let stop = Arc::clone(&stop);
            writers.push(std::thread::spawn(move || {
                assert!(attach_worker(&table, WorkerRole::Worker));
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    stamp_stage(Stage::ALL[(i % 5) as usize], t * 1000 + i);
                    stamp_idle();
                    i += 1;
                }
                detach_worker();
            }));
        }
        for _ in 0..2000 {
            for row in table.sample() {
                if let WorkerActivity::Running { conn, .. } = row.activity {
                    // conn encodes the writer id in its thousands digit;
                    // any value outside a writer's range would be a torn
                    // cross-thread mix (each slot has exactly one writer).
                    assert!(conn < 4000 + 2_000_000, "corrupt conn {conn}");
                }
            }
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
    }

    #[test]
    fn hub_capture_builds_parseable_snapshot() {
        let hub = test_hub();
        let table = WorkerStateTable::new(2);
        hub.wire_workers(Arc::clone(&table));
        hub.wire_tracer(DebugTracer::enabled(16));
        let snap = hub.capture("on_demand");
        assert_eq!(snap.seq, 1);
        assert_eq!(snap.reason, "on_demand");
        let json = snap.to_json();
        for key in [
            "\"counters\"",
            "\"stages\"",
            "\"queue\"",
            "\"workers\"",
            "\"cache\":null",
            "\"overload\":null",
            "\"trace\"",
            "\"watchdog\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(hub.latest().expect("stored").seq, 1);
    }

    #[test]
    fn hub_ring_keeps_last_k() {
        let hub = test_hub();
        hub.set_ring_capacity(3);
        for i in 0..5 {
            hub.capture(&format!("r{i}"));
        }
        let ring = hub.ring();
        assert_eq!(ring.len(), 3);
        assert_eq!(ring[0].reason, "r2");
        assert_eq!(ring[2].reason, "r4");
        assert_eq!(hub.snapshots_captured(), 5);
    }

    #[test]
    fn watchdog_fires_on_stuck_worker_and_names_it() {
        let hub = test_hub();
        let table = WorkerStateTable::new(2);
        hub.wire_workers(Arc::clone(&table));
        let t2 = Arc::clone(&table);
        let done = Arc::new(AtomicBool::new(false));
        let d2 = Arc::clone(&done);
        let h = std::thread::spawn(move || {
            assert!(attach_worker(&t2, WorkerRole::Worker));
            stamp_stage(Stage::Handle, 99);
            while !d2.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(1));
            }
            detach_worker();
        });
        let cfg = WatchdogConfig {
            tick: Duration::from_millis(2),
            stuck_ceiling: Duration::from_millis(5),
            ..WatchdogConfig::default()
        };
        let mut wd = Watchdog::spawn(cfg, hub.clone(), None);
        let deadline = Instant::now() + Duration::from_secs(5);
        while !wd.has_fired() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(wd.has_fired(), "watchdog never fired on a stuck worker");
        let snap = hub.latest().expect("trigger captured a snapshot");
        assert!(snap.reason.contains("worker_stuck"), "{}", snap.reason);
        assert!(snap.reason.contains("stage=handle"), "{}", snap.reason);
        assert!(snap.reason.contains("conn=99"), "{}", snap.reason);
        done.store(true, Ordering::Relaxed);
        wd.stop();
        h.join().unwrap();
    }

    #[test]
    fn watchdog_stays_quiet_on_healthy_idle_table() {
        let hub = test_hub();
        let table = WorkerStateTable::new(2);
        hub.wire_workers(Arc::clone(&table));
        let cfg = WatchdogConfig {
            tick: Duration::from_millis(1),
            stuck_ceiling: Duration::from_millis(5),
            ..WatchdogConfig::default()
        };
        let mut wd = Watchdog::spawn(cfg, hub.clone(), None);
        std::thread::sleep(Duration::from_millis(50));
        wd.stop();
        assert!(!wd.has_fired());
        assert_eq!(hub.watchdog_triggers(), 0);
    }

    #[test]
    fn watchdog_saturation_fires_after_sustained_backlog() {
        let hub = test_hub();
        let gauge = Arc::new(AtomicUsize::new(100));
        hub.wire_queue(Arc::clone(&gauge), Arc::new(|| 0));
        let cfg = WatchdogConfig {
            tick: Duration::from_millis(1),
            queue_saturation: Some(10),
            saturation_ticks: 3,
            ..WatchdogConfig::default()
        };
        let mut wd = Watchdog::spawn(cfg, hub.clone(), None);
        let deadline = Instant::now() + Duration::from_secs(5);
        while !wd.has_fired() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        wd.stop();
        assert!(wd.has_fired());
        let snap = hub.latest().expect("snapshot");
        assert!(snap.reason.contains("queue_saturated"), "{}", snap.reason);
    }

    #[test]
    fn watchdog_slo_burn_fires_on_windowed_p99() {
        let hub = test_hub();
        let cfg = WatchdogConfig {
            tick: Duration::from_millis(1),
            p99_slo_us: Some(1_000),
            slo_stage: Stage::Handle,
            slo_min_samples: 8,
            ..WatchdogConfig::default()
        };
        let mut wd = Watchdog::spawn(cfg, hub.clone(), None);
        // Pour slow samples in while the watchdog windows them.
        let deadline = Instant::now() + Duration::from_secs(5);
        while !wd.has_fired() && Instant::now() < deadline {
            for _ in 0..8 {
                hub.metrics().record_stage(Stage::Handle, 50_000);
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        wd.stop();
        assert!(wd.has_fired(), "SLO burn never fired");
        let snap = hub.latest().expect("snapshot");
        assert!(snap.reason.contains("slo_burn"), "{}", snap.reason);
    }

    #[test]
    fn hub_prometheus_includes_wired_families() {
        let hub = test_hub();
        let table = WorkerStateTable::new(2);
        hub.wire_workers(table);
        hub.set_cache_provider(Arc::new(|| CacheSample {
            hits: 5,
            misses: 2,
            ..CacheSample::default()
        }));
        let text = hub.prometheus();
        assert!(text.contains("nserver_cache_hits 5"));
        assert!(text.contains("nserver_workers_idle"));
        assert!(text.contains("nserver_watchdog_triggers 0"));
        assert!(text.contains("nserver_trace_dropped_spans 0"));
    }
}
