//! Table 2 — the option × class crosscut matrix, derived from the
//! fragment registry that drives the code generator. `O` marks an option
//! that gates a class's existence; `+` marks an option whose value alters
//! the class's generated code.

use nserver_bench::write_csv;
use nserver_codegen::{render_matrix, CrosscutMatrix, OptionId};

fn main() {
    let m = CrosscutMatrix::build();
    println!("TABLE 2 — N-SERVER OPTIONS CROSSCUT THE GENERATED CLASSES");
    println!("(O = option gates the class's existence, + = option changes its code)\n");
    println!("{}", render_matrix(&m));

    println!("Crosscut summary:");
    println!("  classes: {}", m.classes.len());
    println!("  (class, option) dependencies: {}", m.dependency_count());
    for opt in OptionId::ALL {
        println!(
            "  {:>4} touches {:>2} of {} classes",
            opt.label(),
            m.classes_touched(opt),
            m.classes.len()
        );
    }
    println!(
        "\nThis is the paper's argument for generation over a static framework:\n\
         every option crosscuts several classes, so supporting all {} option\n\
         combinations dynamically would require pervasive indirection.",
        1u64 << 12
    );

    let mut csv = Vec::new();
    for (name, row) in m.classes.iter().zip(&m.cells) {
        let marks: Vec<&str> = row
            .iter()
            .map(|mk| match mk {
                nserver_codegen::crosscut::Mark::Gates => "O",
                nserver_codegen::crosscut::Mark::Affects => "+",
                nserver_codegen::crosscut::Mark::None => "",
            })
            .collect();
        csv.push(format!("{name},{}", marks.join(",")));
    }
    write_csv(
        "table2_crosscut.csv",
        "class,O1,O2,O3,O4,O5,O6,O7,O8,O9,O10,O11,O12",
        &csv,
    );
}
