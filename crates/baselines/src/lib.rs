//! # nserver-baselines
//!
//! The comparison systems and simulation experiments of the paper's
//! evaluation:
//!
//! * [`apache`] — a model of Apache 1.3.27's process-per-connection
//!   architecture: a bounded pool of 150 worker processes, a finite listen
//!   backlog whose overflow silently drops SYNs, and multiprogramming
//!   overhead that grows with the number of live worker processes.
//! * [`world`] — the discrete-event experiment world reproducing the
//!   paper's testbed for Figures 3, 4 and 6: up to 1024 clients with
//!   SpecWeb99-like requests, a shared ~100 Mbit/s network, a 4-CPU
//!   server host, a disk with an 80 MB OS buffer cache, and either the
//!   Apache model or the simulated COPS-HTTP event-driven server (which
//!   reuses `nserver-core`'s *actual* overload-control policy code).
//! * [`scheduling`] — the Fig. 5 differentiated-service experiment,
//!   driving `nserver-core`'s *actual* [`nserver_core::scheduler::
//!   PriorityQuotaQueue`] under a two-class saturated workload.
//! * [`presets`] — SPED and MPED architecture emulations expressed as
//!   N-Server option presets (the paper notes both architectures "can be
//!   emulated using the N-Server").

pub mod apache;
pub mod presets;
pub mod scheduling;
pub mod world;

pub use apache::ApacheParams;
pub use scheduling::{run_scheduling_experiment, SchedulingOutcome, SchedulingParams};
pub use world::{ExperimentParams, Outcome, ServerKind, World};
