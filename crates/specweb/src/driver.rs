//! A real-socket workload driver implementing the paper's client model:
//! "establish a connection to the Web server, issue 5 HTTP requests …
//! then terminate the connection. … there is a 20 milliseconds pause
//! after receiving each page."
//!
//! Used by integration tests and by anyone wanting to load a real
//! COPS-HTTP instance rather than the simulator. Each simulated web
//! client runs on its own thread; per-client response counts come back
//! for fairness computations.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::access::AccessSampler;
use crate::fileset::FileSet;
use crate::ClientConfig;

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Number of concurrent simulated web clients.
    pub clients: usize,
    /// How long to generate load.
    pub duration: Duration,
    /// Client behaviour (requests per connection, think time).
    pub client: ClientConfig,
    /// RNG seed (per-client streams derive from it).
    pub seed: u64,
}

/// Aggregate results of a driver run.
#[derive(Debug, Clone)]
pub struct DriverReport {
    /// Responses received per client.
    pub per_client: Vec<u64>,
    /// Total bytes of response bodies received.
    pub body_bytes: u64,
    /// Requests that failed (connect errors, bad status, timeouts).
    pub errors: u64,
}

impl DriverReport {
    /// Total responses across clients.
    pub fn total_responses(&self) -> u64 {
        self.per_client.iter().sum()
    }
}

/// Read one HTTP response off `stream`; returns the body length, or
/// `None` on malformed/failed responses.
fn read_response(stream: &mut TcpStream) -> Option<usize> {
    let mut acc: Vec<u8> = Vec::new();
    let mut buf = [0u8; 8192];
    let (mut body_start, mut body_len) = (0usize, usize::MAX);
    loop {
        if body_len != usize::MAX && acc.len() >= body_start + body_len {
            return Some(body_len);
        }
        let n = stream.read(&mut buf).ok()?;
        if n == 0 {
            return None;
        }
        acc.extend_from_slice(&buf[..n]);
        if body_len == usize::MAX {
            if let Some(pos) = acc.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = String::from_utf8_lossy(&acc[..pos]);
                if !head.contains(" 200 ") {
                    return None;
                }
                body_len = head
                    .lines()
                    .find(|l| l.to_ascii_lowercase().starts_with("content-length"))
                    .and_then(|l| l.split(':').nth(1))
                    .and_then(|v| v.trim().parse().ok())?;
                body_start = pos + 4;
            }
        }
    }
}

/// Run the workload against a live server.
pub fn run(fileset: &FileSet, config: &DriverConfig) -> DriverReport {
    let sampler = Arc::new(AccessSampler::new(fileset));
    let fileset = Arc::new(fileset.clone());
    let stop = Arc::new(AtomicBool::new(false));
    let body_bytes = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::with_capacity(config.clients);
    for c in 0..config.clients {
        let addr = config.addr.clone();
        let sampler = Arc::clone(&sampler);
        let fileset = Arc::clone(&fileset);
        let stop = Arc::clone(&stop);
        let body_bytes = Arc::clone(&body_bytes);
        let errors = Arc::clone(&errors);
        let client_cfg = config.client;
        let seed = config.seed.wrapping_add(c as u64);
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut responses = 0u64;
            'outer: while !stop.load(Ordering::Relaxed) {
                let Ok(mut conn) = TcpStream::connect(&addr) else {
                    errors.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                };
                let _ = conn.set_read_timeout(Some(Duration::from_secs(5)));
                let _ = conn.set_nodelay(true);
                for r in 0..client_cfg.requests_per_connection {
                    if stop.load(Ordering::Relaxed) {
                        break 'outer;
                    }
                    let spec = sampler.sample_spec(&fileset, &mut rng);
                    let close = r + 1 == client_cfg.requests_per_connection;
                    let req = if close {
                        format!(
                            "GET {} HTTP/1.1\r\nHost: driver\r\nConnection: close\r\n\r\n",
                            spec.path()
                        )
                    } else {
                        format!("GET {} HTTP/1.1\r\nHost: driver\r\n\r\n", spec.path())
                    };
                    if conn.write_all(req.as_bytes()).is_err() {
                        errors.fetch_add(1, Ordering::Relaxed);
                        continue 'outer;
                    }
                    match read_response(&mut conn) {
                        Some(len) => {
                            responses += 1;
                            body_bytes.fetch_add(len as u64, Ordering::Relaxed);
                        }
                        None => {
                            errors.fetch_add(1, Ordering::Relaxed);
                            continue 'outer;
                        }
                    }
                    std::thread::sleep(Duration::from_millis(client_cfg.think_time_ms));
                }
            }
            responses
        }));
    }

    std::thread::sleep(config.duration);
    stop.store(true, Ordering::Relaxed);
    let per_client: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap_or(0)).collect();
    DriverReport {
        per_client,
        body_bytes: body_bytes.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_totals() {
        let r = DriverReport {
            per_client: vec![3, 4, 5],
            body_bytes: 100,
            errors: 0,
        };
        assert_eq!(r.total_responses(), 12);
    }
}
