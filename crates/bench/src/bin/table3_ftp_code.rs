//! Table 3 — the COPS-FTP code distribution.
//!
//! The paper transformed Apache FTPServer into an event-driven server:
//! 8,141 NCSS reused, 1,186 removed, 1,897 added, 2,937 generated. Our
//! reproduction measures the same categories over this repository:
//!
//! * **Generated** — the framework `nserver-codegen` emits for the
//!   COPS-FTP option preset;
//! * **Reused** — the protocol-agnostic legacy library (`ftp/src/legacy`),
//!   our stand-in for the reused Apache FTPServer code;
//! * **Added** — the event-driven adaptation layer (codec, service,
//!   session, command parser, preset);
//! * **Removed** — not applicable here (we wrote the legacy library
//!   fresh rather than trimming a larger code base); reported as 0 with
//!   the paper value alongside.

use nserver_bench::{render_table, stats_for, write_csv};
use nserver_codegen::{generate, CodeStats};
use nserver_ftp::cops_ftp_options;

fn main() {
    let generated_fw = generate("cops-ftp", &cops_ftp_options(), "../crates");
    let generated = generated_fw.generated_stats();

    let reused = stats_for(
        "ftp",
        &[
            "legacy/mod.rs",
            "legacy/replies.rs",
            "legacy/users.rs",
            "legacy/vfs.rs",
        ],
    );
    let added = stats_for(
        "ftp",
        &[
            "lib.rs",
            "codec.rs",
            "commands.rs",
            "service.rs",
            "session.rs",
            "preset.rs",
        ],
    );
    let removed = CodeStats::default();

    let paper = [
        ("Reused code", 124, 945, 8141),
        ("Removed code", 18, 199, 1186),
        ("Added code", 23, 150, 1897),
        ("Generated code", 84, 480, 2937),
    ];
    let ours = [reused, removed, added, generated];

    println!("TABLE 3 — THE CODE DISTRIBUTION OF COPS-FTP");
    println!("(paper counts Java classes/methods/NCSS; ours count Rust types/fns/NCSS)\n");
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for ((name, p_classes, p_methods, p_ncss), s) in paper.iter().zip(&ours) {
        rows.push(vec![
            name.to_string(),
            format!("{p_classes}"),
            format!("{p_methods}"),
            format!("{p_ncss}"),
            format!("{}", s.classes),
            format!("{}", s.methods),
            format!("{}", s.ncss),
        ]);
        csv.push(format!(
            "{name},{p_classes},{p_methods},{p_ncss},{},{},{}",
            s.classes, s.methods, s.ncss
        ));
    }
    println!(
        "{}",
        render_table(
            &[
                "Category",
                "paper classes",
                "paper methods",
                "paper NCSS",
                "our types",
                "our fns",
                "our NCSS",
            ],
            &rows,
        )
    );

    let hand = reused.ncss + added.ncss;
    println!(
        "Shape check: generated code carries the concurrency machinery; the\n\
         event-driven adaptation layer (added: {} NCSS) is small relative to the\n\
         reused library ({} NCSS) — handwritten total {} NCSS vs {} generated.",
        added.ncss, reused.ncss, hand, generated.ncss
    );

    write_csv(
        "table3_ftp_code.csv",
        "category,paper_classes,paper_methods,paper_ncss,our_types,our_fns,our_ncss",
        &csv,
    );
}
