//! # conformance
//!
//! Model-based conformance harness: executable protocol specifications
//! driving schedule exploration against the real reactor.
//!
//! The paper's claim is that generated N-Server frameworks behave
//! identically across template option columns. This crate turns that claim
//! into a checkable artifact. It has three layers:
//!
//! * **Executable models** ([`http_model`], [`ftp_model`]) — pure
//!   functions from a connection's *post-fault inbound bytes* to the set
//!   of legal outbound observations. The HTTP model is byte-exact: the
//!   expected response stream is fully determined by the decoded request
//!   stream and the content fixture, and a conforming trace must be a
//!   prefix of it (prefix closure is what makes the acceptor
//!   nondeterministic — a fault may cut the stream anywhere). The FTP
//!   model accepts at the reply-code + multiline-flag level, because
//!   `STAT` bodies carry live counters.
//! * **Schedules** ([`schedule`]) — a seeded, serializable description of
//!   one adversarial run: a [`nserver_core::fault::FaultPlan`], per-client
//!   byte scripts split into segments, and an interleaving order with
//!   pauses. Equal seeds generate equal schedules; the fingerprint hashes
//!   the serialized form so distinct-schedule coverage is countable.
//! * **The explorer** ([`explorer`]) — runs the real server over the
//!   in-memory transport under `FaultyListener` + `TapListener`, delivers
//!   the schedule, and checks every recorded [`ConnTrace`] against the
//!   model. On violation it shrinks the schedule greedily and panics with
//!   a replayable counterexample (seed + serialized schedule).
//!
//! [`mutant`] provides deliberately broken service wrappers used by the
//! mutation tests: each must be caught by the models, which is the
//! harness's own soundness check.

pub mod explorer;
pub mod ftp_model;
pub mod http_model;
pub mod mutant;
pub mod schedule;

pub use explorer::{
    explore, run, run_ftp, run_http, run_http_with_options, seed_range, shrink,
    standard_ftp_service, standard_http_service, ExploreSummary, RunReport,
};
pub use ftp_model::FtpModel;
pub use http_model::HttpFixture;
pub use mutant::{FtpMutation, HttpMutation, MutantFtp, MutantHttp};
pub use schedule::{enumerate_orders, generate, ConnScript, Proto, Schedule, Step};

use nserver_core::tap::{ConnTrace, TapEvent};

/// One conformance violation found in a connection trace.
#[derive(Debug, Clone)]
pub struct Violation {
    /// 1-based accept index of the offending connection.
    pub accept_index: u64,
    /// Fault profile the plan assigned to it.
    pub profile: String,
    /// Violation class (stable identifier for grepping).
    pub kind: &'static str,
    /// Human-readable diagnosis.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "conn #{} [{}] {}: {}",
            self.accept_index, self.profile, self.kind, self.detail
        )
    }
}

/// The protocol-independent event-legality rule: once a connection's
/// transport has failed hard (a `ReadError` or `WriteError`), its sink is
/// dead — any later `Wrote` or `WriteError` is a reply written to a reset
/// peer. Writing after `ReadEof` alone is legal: half-close only ends the
/// request stream, and pending responses must still drain.
pub fn event_order_violation(trace: &ConnTrace) -> Option<Violation> {
    let mut dead = false;
    for (i, ev) in trace.events.iter().enumerate() {
        match ev {
            TapEvent::Wrote(b) if dead => {
                return Some(Violation {
                    accept_index: trace.accept_index,
                    profile: trace.profile.clone(),
                    kind: "write-after-error",
                    detail: format!("event {i}: {} bytes written after the sink died", b.len()),
                });
            }
            TapEvent::WriteError(e) if dead => {
                return Some(Violation {
                    accept_index: trace.accept_index,
                    profile: trace.profile.clone(),
                    kind: "write-after-error",
                    detail: format!("event {i}: write retried on a dead sink ({e})"),
                });
            }
            TapEvent::ReadError(_) | TapEvent::WriteError(_) => dead = true,
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(events: Vec<TapEvent>) -> ConnTrace {
        ConnTrace {
            accept_index: 1,
            peer: "peer-1".into(),
            profile: "Clean".into(),
            events,
        }
    }

    #[test]
    fn writes_after_eof_are_legal() {
        let t = trace(vec![
            TapEvent::Read(b"GET".to_vec()),
            TapEvent::ReadEof,
            TapEvent::Wrote(b"HTTP/1.1 200".to_vec()),
        ]);
        assert!(event_order_violation(&t).is_none());
    }

    #[test]
    fn write_after_read_error_is_flagged() {
        let t = trace(vec![
            TapEvent::ReadError("reset".into()),
            TapEvent::Wrote(b"late".to_vec()),
        ]);
        let v = event_order_violation(&t).expect("violation");
        assert_eq!(v.kind, "write-after-error");
    }

    #[test]
    fn single_write_error_is_legal_but_a_second_is_not() {
        let ok = trace(vec![
            TapEvent::Wrote(b"partial".to_vec()),
            TapEvent::WriteError("reset".into()),
        ]);
        assert!(event_order_violation(&ok).is_none());
        let bad = trace(vec![
            TapEvent::WriteError("reset".into()),
            TapEvent::WriteError("reset".into()),
        ]);
        assert!(event_order_violation(&bad).is_some());
    }
}
