//! Virtual time, measured in integer microseconds.
//!
//! Integer microseconds are precise enough for network/CPU service times in
//! these experiments while keeping event ordering exact (no floating-point
//! tie ambiguity) and arithmetic overflow-checked in debug builds.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time (microseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from fractional seconds (rounds to the nearest µs).
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative sim duration");
        SimTime((s * 1e6).round() as u64)
    }

    /// Value in microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Value in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Value in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction (useful for "time since" computations).
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}µs", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3000));
        assert_eq!(SimTime::from_secs_f64(0.5), SimTime::from_millis(500));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimTime::from_millis(500);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!((t - SimTime::from_secs(1)).as_millis_f64(), 500.0);
        assert_eq!(
            SimTime::from_secs(1).saturating_sub(SimTime::from_secs(2)),
            SimTime::ZERO
        );
    }

    #[test]
    fn ordering_is_total() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert!(SimTime::ZERO <= SimTime::ZERO);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime::from_micros(12).to_string(), "12µs");
        assert_eq!(SimTime::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimTime::from_secs(12).to_string(), "12.000s");
    }
}
