//! The Decode Request / Encode Reply hooks for COPS-HTTP: a thin adapter
//! between the protocol library and the N-Server pipeline.

use std::sync::Arc;

use bytes::BytesMut;
use nserver_core::pipeline::{Codec, DecodeState, EncodedReply, ProtocolError};

use crate::parse::{encode_response, encode_response_head, parse_request_hinted, ParseOutcome};
use crate::types::{Request, Response};

/// HTTP codec: one [`Request`] in, one [`Response`] out.
///
/// An optional decode delay emulates CPU-heavy request parsing — the
/// paper's third experiment "force\[s\] each thread to sleep for 50
/// milliseconds when decoding an HTTP request" to make the workload
/// CPU-bound for the overload-control study.
#[derive(Debug, Default, Clone, Copy)]
pub struct HttpCodec {
    /// Artificial per-request decode delay in milliseconds (experiment 3).
    pub decode_delay_ms: u64,
}

impl HttpCodec {
    /// A production codec without artificial delay.
    pub fn new() -> Self {
        Self::default()
    }

    /// The overload-experiment codec (50 ms decode burn in the paper).
    pub fn with_decode_delay(ms: u64) -> Self {
        Self {
            decode_delay_ms: ms,
        }
    }
}

impl Codec for HttpCodec {
    type Request = Request;
    type Response = Response;

    fn decode(&self, buf: &mut BytesMut) -> Result<Option<Request>, ProtocolError> {
        let mut state = DecodeState::default();
        self.decode_with(buf, &mut state)
    }

    fn encode(&self, resp: &Response, out: &mut BytesMut) -> Result<(), ProtocolError> {
        encode_response(resp, out);
        Ok(())
    }

    /// Incremental decode: the per-connection [`DecodeState`] remembers
    /// how far the blank-line scan got, so a sender dripping the head one
    /// byte at a time (slow loris) costs O(n) total instead of O(n²).
    fn decode_with(
        &self,
        buf: &mut BytesMut,
        state: &mut DecodeState,
    ) -> Result<Option<Request>, ProtocolError> {
        match parse_request_hinted(buf, &mut state.scanned) {
            ParseOutcome::Complete(req) => {
                if self.decode_delay_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(self.decode_delay_ms));
                }
                Ok(Some(req))
            }
            ParseOutcome::Incomplete => Ok(None),
            ParseOutcome::Invalid(why) => Err(ProtocolError(why)),
        }
    }

    /// Zero-copy encode: the head goes into an owned segment; the body —
    /// shared with the file cache via its `Arc` — rides as a borrowed
    /// segment, so a cached file is never memcpy'd per response.
    fn encode_reply(&self, resp: &Response, out: &mut EncodedReply) -> Result<(), ProtocolError> {
        let mut head = BytesMut::new();
        encode_response_head(resp, &mut head);
        out.push_bytes(head);
        if !resp.head_only {
            out.push_shared(Arc::clone(&resp.body));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Method, Status, Version};
    use std::sync::Arc;

    #[test]
    fn codec_decodes_and_encodes() {
        let c = HttpCodec::new();
        let mut buf = BytesMut::from(&b"GET /f HTTP/1.1\r\n\r\n"[..]);
        let req = c.decode(&mut buf).unwrap().unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.target, "/f");

        let resp = Response::ok(Arc::new(b"abc".to_vec()), "text/plain", Version::Http11);
        let mut out = BytesMut::new();
        c.encode(&resp, &mut out).unwrap();
        assert!(out.starts_with(b"HTTP/1.1 200"));
    }

    #[test]
    fn codec_incomplete_returns_none() {
        let c = HttpCodec::new();
        let mut buf = BytesMut::from(&b"GET /f HT"[..]);
        assert!(c.decode(&mut buf).unwrap().is_none());
    }

    #[test]
    fn codec_invalid_is_protocol_error() {
        let c = HttpCodec::new();
        let mut buf = BytesMut::from(&b"NOPE / HTTP/1.1\r\n\r\n"[..]);
        assert!(c.decode(&mut buf).is_err());
    }

    #[test]
    fn decode_delay_burns_time() {
        let c = HttpCodec::with_decode_delay(20);
        let mut buf = BytesMut::from(&b"GET /f HTTP/1.1\r\n\r\n"[..]);
        let t0 = std::time::Instant::now();
        c.decode(&mut buf).unwrap().unwrap();
        assert!(t0.elapsed() >= std::time::Duration::from_millis(20));
    }

    #[test]
    fn error_responses_encode() {
        let c = HttpCodec::new();
        let mut out = BytesMut::new();
        c.encode(
            &Response::error(Status::NotFound, Version::Http10),
            &mut out,
        )
        .unwrap();
        assert!(out.starts_with(b"HTTP/1.0 404"));
    }
}
