//! # nserver-netsim
//!
//! Discrete-event simulation substrate standing in for the paper's hardware
//! testbed (two 4-CPU Sun E420R servers, sixteen Sun Ultra 10 clients, and a
//! switched Gigabit Ethernet whose effective bandwidth was limited to
//! "something slightly higher than 100 MBits/sec").
//!
//! The experiments in the paper need a thousand concurrent clients, a shared
//! network bottleneck, multi-CPU servers, a disk with an OS buffer cache, and
//! Solaris TCP SYN-retransmission behaviour — none of which can be produced
//! faithfully on a single development machine. This crate provides those
//! pieces as composable discrete-event components driven by **virtual
//! time**, so the figure-level experiments are deterministic and run in
//! seconds:
//!
//! * [`engine`] — the event heap, virtual clock and run loop.
//! * [`link`] — a shared-bandwidth FIFO link with 1500-byte MTU framing.
//! * [`cpu`] — an N-CPU FIFO service centre (the server host).
//! * [`disk`] — a single-server disk plus an OS buffer cache model.
//! * [`tcp`] — listen-queue overflow and exponential SYN retransmission
//!   backoff (capped at 60 s, the Solaris maximum the paper cites).
//! * [`stats`] — response-time statistics and the Jain fairness index.
//! * [`rng`] — a small deterministic RNG so runs are reproducible.

pub mod cpu;
pub mod disk;
pub mod engine;
pub mod link;
pub mod rng;
pub mod stats;
pub mod tcp;
pub mod time;

pub use cpu::CpuPool;
pub use disk::{BufferCache, Disk};
pub use engine::{Model, Scheduler};
pub use link::{Link, LinkEvent, LinkFault};
pub use rng::SimRng;
pub use stats::{jain_index, Histogram, OnlineStats};
pub use tcp::{ListenQueue, SynRetransmit};
pub use time::SimTime;
