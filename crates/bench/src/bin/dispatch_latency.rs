//! O1 ablation artifact: idle-wake latency of the dispatch loop.
//!
//! Measures how long an idle dispatch thread takes to notice newly
//! arrived work under two regimes:
//!
//! * `sleep_poll` — the scan-and-sleep loop this repository used before
//!   readiness demultiplexing: check for work, sleep 200 µs, repeat.
//! * `poller_waker` — the current design: block in `MemPoller::wait`
//!   until the registered [`Waker`] fires.
//!
//! Writes `BENCH_dispatch.json` at the workspace root recording the
//! distributions and the mean-latency improvement factor. Pass `--quick`
//! for a shortened run.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::{Duration, Instant};

use nserver_core::metrics::Stage;
use nserver_core::options::ServerOptions;
use nserver_core::server::ServerBuilder;
use nserver_core::transport::{mem, Poller, ReadOutcome, StreamIo};
use nserver_http::{cops_http_options, HttpCodec, MemStore, StaticFileService};

/// Latency distribution summary in nanoseconds.
struct Summary {
    mean_ns: f64,
    p50_ns: u64,
    p95_ns: u64,
    p99_ns: u64,
    max_ns: u64,
}

fn summarize(mut samples: Vec<u64>) -> Summary {
    samples.sort_unstable();
    let n = samples.len();
    Summary {
        mean_ns: samples.iter().sum::<u64>() as f64 / n as f64,
        p50_ns: samples[n / 2],
        p95_ns: samples[n * 95 / 100],
        p99_ns: samples[n * 99 / 100],
        max_ns: samples[n - 1],
    }
}

/// The pre-demultiplexing dispatch loop: poll a flag, sleep 200 µs when
/// idle. Reported latency is signal → loop notices.
fn measure_sleep_poll(iters: usize) -> Summary {
    let flag = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let (ack_tx, ack_rx) = channel::<()>();
    let worker = {
        let flag = Arc::clone(&flag);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if flag.swap(false, Ordering::Relaxed) {
                    let _ = ack_tx.send(());
                } else {
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        })
    };
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        flag.store(true, Ordering::Relaxed);
        ack_rx.recv().unwrap();
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    stop.store(true, Ordering::Relaxed);
    flag.store(true, Ordering::Relaxed);
    let _ = worker.join();
    summarize(samples)
}

/// The demultiplexed dispatch loop: block in the poller, get pulled out
/// by the waker. Reported latency is wake → `wait` returns.
fn measure_poller_waker(iters: usize) -> Summary {
    let mut poller = mem::MemPoller::new();
    let waker = poller.waker();
    let stop = Arc::new(AtomicBool::new(false));
    let (ack_tx, ack_rx) = channel::<()>();
    let worker = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut events = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                poller.wait(&mut events, None).unwrap();
                let _ = ack_tx.send(());
            }
        })
    };
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        waker.wake();
        ack_rx.recv().unwrap();
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    stop.store(true, Ordering::Relaxed);
    waker.wake();
    let _ = worker.join();
    summarize(samples)
}

fn json_block(name: &str, s: &Summary) -> String {
    format!(
        "  \"{name}\": {{\n    \"mean_ns\": {:.0},\n    \"p50_ns\": {},\n    \"p95_ns\": {},\n    \"p99_ns\": {},\n    \"max_ns\": {}\n  }}",
        s.mean_ns, s.p50_ns, s.p95_ns, s.p99_ns, s.max_ns
    )
}

/// Per-stage request latency under the O11 histograms: drive a profiled
/// COPS-HTTP instance over the mem transport and report each pipeline
/// stage's sample count and p50/p99 from the server's own registry —
/// the same numbers `/server-status` exposes.
fn measure_stage_latency(requests: usize) -> Vec<(&'static str, u64, u64, u64)> {
    let mut store = MemStore::new();
    store.insert("/bench.txt", vec![b'b'; 512]);
    let opts = ServerOptions {
        profiling: true,
        ..cops_http_options()
    };
    let (listener, connector) = mem::listener("dispatch-stage-bench");
    let server = ServerBuilder::new(opts, HttpCodec::new(), StaticFileService::new(store, None))
        .unwrap()
        .serve(listener);

    let request = b"GET /bench.txt HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n";
    let mut buf = [0u8; 8192];
    for _ in 0..requests {
        let mut conn = connector.connect();
        let mut sent = 0;
        while sent < request.len() {
            match conn.try_write(&request[sent..]) {
                Ok(0) => std::thread::sleep(Duration::from_micros(50)),
                Ok(n) => sent += n,
                Err(e) => panic!("bench write failed: {e}"),
            }
        }
        loop {
            match conn.try_read(&mut buf) {
                Ok(ReadOutcome::Closed) | Err(_) => break,
                Ok(ReadOutcome::WouldBlock) => std::thread::sleep(Duration::from_micros(50)),
                Ok(ReadOutcome::Data(_)) => {}
            }
        }
    }

    let lat = server.latency();
    let rows = Stage::ALL
        .iter()
        .map(|&stage| {
            let h = lat.stage(stage);
            (
                stage.name(),
                h.count,
                h.quantile_us(0.5),
                h.quantile_us(0.99),
            )
        })
        .collect();
    server.shutdown();
    rows
}

fn stage_json(rows: &[(&'static str, u64, u64, u64)]) -> String {
    let body: Vec<String> = rows
        .iter()
        .map(|(name, count, p50, p99)| {
            format!(
                "    \"{name}\": {{ \"count\": {count}, \"p50_us\": {p50}, \"p99_us\": {p99} }}"
            )
        })
        .collect();
    format!("  \"stage_latency_us\": {{\n{}\n  }}", body.join(",\n"))
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let iters = if quick { 200 } else { 2000 };

    println!("idle-wake latency, {iters} wake cycles per mode\n");
    // Interleave a warmup of each before measuring either.
    let _ = measure_sleep_poll(50);
    let _ = measure_poller_waker(50);

    let sleep = measure_sleep_poll(iters);
    let poller = measure_poller_waker(iters);
    let speedup = sleep.mean_ns / poller.mean_ns;

    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "mode", "mean ns", "p50 ns", "p95 ns", "p99 ns", "max ns"
    );
    for (name, s) in [("sleep_poll", &sleep), ("poller_waker", &poller)] {
        println!(
            "{name:<16} {:>12.0} {:>12} {:>12} {:>12} {:>12}",
            s.mean_ns, s.p50_ns, s.p95_ns, s.p99_ns, s.max_ns
        );
    }
    println!("\nmean idle-wake latency improvement: {speedup:.1}x");

    let stage_requests = if quick { 100 } else { 1000 };
    println!("\nper-stage latency, profiled COPS-HTTP, {stage_requests} requests");
    let stages = measure_stage_latency(stage_requests);
    println!(
        "{:<18} {:>8} {:>10} {:>10}",
        "stage", "count", "p50 us", "p99 us"
    );
    for (name, count, p50, p99) in &stages {
        println!("{name:<18} {count:>8} {p50:>10} {p99:>10}");
    }

    let json = format!(
        "{{\n  \"benchmark\": \"idle_wake_latency\",\n  \"iters_per_mode\": {iters},\n{},\n{},\n  \"mean_speedup\": {:.2},\n  \"stage_requests\": {stage_requests},\n{}\n}}\n",
        json_block("sleep_poll", &sleep),
        json_block("poller_waker", &poller),
        speedup,
        stage_json(&stages)
    );
    let path = nserver_bench::crates_dir()
        .parent()
        .map(|p| p.join("BENCH_dispatch.json"))
        .unwrap_or_else(|| "BENCH_dispatch.json".into());
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
