//! Distributed N-Server support — the paper's conclusion names this as
//! "the most interesting extension of this work … to support the
//! generation of distributed N-servers that will serve from a network of
//! workstations."
//!
//! The [`ClusterFrontEnd`] is an event-driven connection relay built from
//! the same non-blocking transport — and the same readiness demultiplexer
//! — the Reactor uses: it accepts client connections, dials a backend
//! N-Server per connection (round-robin or least-connections), and
//! shuttles bytes both ways, blocking in its poller whenever no socket is
//! ready. Backend N-Servers run unchanged — exactly the paper's promise
//! that "the programmer \[writes\] identical hook methods … whether the
//! application was generated for a shared memory machine or a network of
//! workstations."

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::BytesMut;

use crate::transport::{
    Interest, Listener, PollEvent, Poller, ReadOutcome, StreamIo, TcpListenerNb, TcpPoller,
    TcpStreamNb, Waker, LISTENER_TOKEN,
};

/// Backend selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Balancing {
    /// Rotate through the backends in order.
    RoundRobin,
    /// Dial the backend with the fewest live relayed connections.
    LeastConnections,
}

/// Bounded retry-with-backoff for backend dials: a refused or reset dial
/// parks the client and retries against the *next* backend candidate
/// instead of failing the client on the first refusal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total dial attempts per client connection (≥ 1).
    pub attempts: u32,
    /// Delay before the first retry; doubles on each further retry.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 3,
            backoff: Duration::from_millis(50),
        }
    }
}

/// Relay statistics.
#[derive(Debug, Default)]
pub struct RelayStats {
    /// Client connections accepted by the front end.
    pub connections: AtomicU64,
    /// Connections refused because no backend was dialable.
    pub backend_failures: AtomicU64,
    /// Backend dials retried after a failure.
    pub dial_retries: AtomicU64,
    /// Bytes moved client → backend.
    pub bytes_upstream: AtomicU64,
    /// Bytes moved backend → client.
    pub bytes_downstream: AtomicU64,
}

/// A client whose backend dial failed, waiting for its next attempt.
struct PendingDial {
    client: TcpStreamNb,
    attempts_left: u32,
    next_try: Instant,
    backoff: Duration,
    last_index: usize,
}

struct Session {
    client: TcpStreamNb,
    backend: TcpStreamNb,
    backend_index: usize,
    up_buf: BytesMut,
    down_buf: BytesMut,
    client_eof: bool,
    backend_eof: bool,
    /// Whether the finished direction's FIN was propagated (half-close).
    fin_to_client: bool,
    fin_to_backend: bool,
    /// Lingering-close deadline: once one direction finished, the other
    /// side gets this long to send its own FIN before the session is
    /// reaped anyway.
    drain_deadline: Option<Instant>,
    /// Interest currently registered for the client / backend stream.
    client_armed: Interest,
    backend_armed: Interest,
}

impl Session {
    fn new(client: TcpStreamNb, backend: TcpStreamNb, backend_index: usize) -> Session {
        Session {
            client,
            backend,
            backend_index,
            up_buf: BytesMut::new(),
            down_buf: BytesMut::new(),
            client_eof: false,
            backend_eof: false,
            fin_to_client: false,
            fin_to_backend: false,
            drain_deadline: None,
            client_armed: Interest::READABLE,
            backend_armed: Interest::READABLE,
        }
    }
}

/// How long a half-closed session keeps draining the still-open side
/// before being reaped. Generous relative to test and RTT timescales;
/// sessions normally leave via the peer's FIN long before this fires.
const LINGER_DRAIN: Duration = Duration::from_secs(1);

/// A running cluster front end.
pub struct ClusterFrontEnd {
    stop: Arc<AtomicBool>,
    waker: Waker,
    thread: Option<JoinHandle<()>>,
    local_label: String,
    stats: Arc<RelayStats>,
}

impl ClusterFrontEnd {
    /// Start relaying connections arriving on `listener` to `backends`
    /// (socket addresses of running N-Servers), with the default
    /// [`RetryPolicy`] for backend dials.
    pub fn start(
        listener: TcpListenerNb,
        backends: Vec<String>,
        balancing: Balancing,
    ) -> io::Result<ClusterFrontEnd> {
        Self::start_with_retry(listener, backends, balancing, RetryPolicy::default())
    }

    /// [`ClusterFrontEnd::start`] with an explicit backend-dial retry
    /// policy.
    pub fn start_with_retry(
        listener: TcpListenerNb,
        backends: Vec<String>,
        balancing: Balancing,
        retry: RetryPolicy,
    ) -> io::Result<ClusterFrontEnd> {
        if backends.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cluster front end needs at least one backend",
            ));
        }
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(RelayStats::default());
        let local_label = listener.local_label();
        let mut poller = TcpPoller::new()?;
        listener.register_listener(&mut poller)?;
        // Held by the handle so shutdown can pull the relay thread out of
        // its blocking wait.
        let waker = poller.waker();
        let thread = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name("nserver-cluster-frontend".into())
                .spawn(move || {
                    relay_loop(listener, poller, backends, balancing, retry, stop, stats)
                })
                .expect("spawn relay thread")
        };
        Ok(ClusterFrontEnd {
            stop,
            waker,
            thread: Some(thread),
            local_label,
            stats,
        })
    }

    /// The front end's listen address.
    pub fn local_label(&self) -> &str {
        &self.local_label
    }

    /// Statistics snapshot source.
    pub fn stats(&self) -> &RelayStats {
        &self.stats
    }

    /// Stop relaying and join the relay thread; live connections close.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        self.waker.wake();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ClusterFrontEnd {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        self.waker.wake();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Poller tokens: session `k` registers its client stream under `2k` and
/// its backend stream under `2k + 1`. Keys start at 1 so no session token
/// collides with [`LISTENER_TOKEN`].
fn session_key(token: u64) -> u64 {
    token >> 1
}

fn choose_index(balancing: Balancing, per_backend: &[usize], next_rr: &mut usize) -> usize {
    match balancing {
        Balancing::RoundRobin => {
            let i = *next_rr % per_backend.len();
            *next_rr += 1;
            i
        }
        Balancing::LeastConnections => per_backend
            .iter()
            .enumerate()
            .min_by_key(|(_, &n)| n)
            .map(|(i, _)| i)
            .unwrap_or(0),
    }
}

fn relay_loop(
    mut listener: TcpListenerNb,
    mut poller: TcpPoller,
    backends: Vec<String>,
    balancing: Balancing,
    retry: RetryPolicy,
    stop: Arc<AtomicBool>,
    stats: Arc<RelayStats>,
) {
    let mut sessions: HashMap<u64, Session> = HashMap::new();
    let mut parked: Vec<PendingDial> = Vec::new();
    let mut per_backend = vec![0usize; backends.len()];
    let mut next_rr = 0usize;
    let mut next_key: u64 = 1;
    let mut buf = vec![0u8; 16 * 1024];
    let mut events: Vec<PollEvent> = Vec::new();

    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }

        let mut accept_ready = false;
        let mut touched: Vec<u64> = Vec::new();
        for ev in events.drain(..) {
            if ev.token == LISTENER_TOKEN {
                accept_ready = true;
            } else {
                touched.push(session_key(ev.token));
            }
        }
        touched.sort_unstable();
        touched.dedup();

        // Accept and dial. A failed dial parks the client for a bounded
        // retry against the next backend candidate instead of dropping it.
        if accept_ready {
            while let Ok(Some(client)) = listener.try_accept() {
                let index = choose_index(balancing, &per_backend, &mut next_rr);
                match TcpStreamNb::connect(&backends[index]) {
                    Ok(backend) => {
                        per_backend[index] += 1;
                        stats.connections.fetch_add(1, Ordering::Relaxed);
                        let k = next_key;
                        next_key += 1;
                        let _ = poller.register(2 * k, &client, Interest::READABLE);
                        let _ = poller.register(2 * k + 1, &backend, Interest::READABLE);
                        sessions.insert(k, Session::new(client, backend, index));
                        // Service once now: data may already be in flight.
                        touched.push(k);
                    }
                    Err(_) if retry.attempts > 1 => {
                        parked.push(PendingDial {
                            client,
                            attempts_left: retry.attempts - 1,
                            next_try: Instant::now() + retry.backoff,
                            backoff: retry.backoff,
                            last_index: index,
                        });
                    }
                    Err(_) => {
                        stats.backend_failures.fetch_add(1, Ordering::Relaxed);
                        let mut client = client;
                        client.shutdown();
                    }
                }
            }
        }

        // Retry parked dials whose backoff elapsed, rotating to the next
        // backend so a single dead peer cannot absorb every attempt.
        let now = Instant::now();
        let mut i = 0;
        while i < parked.len() {
            if parked[i].next_try > now {
                i += 1;
                continue;
            }
            let mut pd = parked.swap_remove(i);
            stats.dial_retries.fetch_add(1, Ordering::Relaxed);
            let index = if backends.len() > 1 {
                (pd.last_index + 1) % backends.len()
            } else {
                pd.last_index
            };
            match TcpStreamNb::connect(&backends[index]) {
                Ok(backend) => {
                    per_backend[index] += 1;
                    stats.connections.fetch_add(1, Ordering::Relaxed);
                    let k = next_key;
                    next_key += 1;
                    let _ = poller.register(2 * k, &pd.client, Interest::READABLE);
                    let _ = poller.register(2 * k + 1, &backend, Interest::READABLE);
                    sessions.insert(k, Session::new(pd.client, backend, index));
                    touched.push(k);
                }
                Err(_) => {
                    pd.attempts_left -= 1;
                    if pd.attempts_left == 0 {
                        stats.backend_failures.fetch_add(1, Ordering::Relaxed);
                        pd.client.shutdown();
                    } else {
                        pd.backoff *= 2;
                        pd.next_try = now + pd.backoff;
                        pd.last_index = index;
                        parked.push(pd);
                    }
                }
            }
        }

        // Shuttle bytes on the sessions the poller flagged.
        for k in touched {
            let s = match sessions.get_mut(&k) {
                Some(s) => s,
                None => continue, // stale event for a finished session
            };
            pump(
                &mut s.client,
                &mut s.backend,
                &mut s.up_buf,
                &mut s.client_eof,
                &mut buf,
                &stats.bytes_upstream,
            );
            pump(
                &mut s.backend,
                &mut s.client,
                &mut s.down_buf,
                &mut s.backend_eof,
                &mut buf,
                &stats.bytes_downstream,
            );
            // A finished direction propagates as a half-close (FIN after
            // the drained relay bytes), never as an immediate full close:
            // closing a socket with unread peer bytes in its receive
            // queue answers with RST, and an RST discards reply bytes the
            // peer has not consumed yet. The session lingers — still
            // pumping the open direction — until both sides finish or the
            // drain deadline reaps it.
            // The `is_empty` guards uphold the `shutdown_write` contract:
            // FIN only ever follows a fully drained relay buffer.
            if s.client_eof && s.up_buf.is_empty() && !s.fin_to_backend {
                s.backend.shutdown_write();
                s.fin_to_backend = true;
            }
            if s.backend_eof && s.down_buf.is_empty() && !s.fin_to_client {
                s.client.shutdown_write();
                s.fin_to_client = true;
            }
            if s.client_eof && s.up_buf.is_empty() && s.backend_eof && s.down_buf.is_empty() {
                let s = sessions.remove(&k).expect("present");
                teardown(&mut poller, &mut per_backend, k, s);
                continue;
            }
            if (s.fin_to_client || s.fin_to_backend) && s.drain_deadline.is_none() {
                s.drain_deadline = Some(Instant::now() + LINGER_DRAIN);
            }
            // Re-arm interest: stop read-polling a half-closed side, poll
            // writability only while relay bytes are actually queued.
            let want_client = Interest {
                readable: !s.client_eof,
                writable: !s.down_buf.is_empty(),
            };
            if want_client != s.client_armed {
                let _ = poller.reregister(2 * k, &s.client, want_client);
                s.client_armed = want_client;
            }
            let want_backend = Interest {
                readable: !s.backend_eof,
                writable: !s.up_buf.is_empty(),
            };
            if want_backend != s.backend_armed {
                let _ = poller.reregister(2 * k + 1, &s.backend, want_backend);
                s.backend_armed = want_backend;
            }
        }

        // Reap half-closed sessions whose still-open side never sent its
        // own FIN inside the lingering window.
        let now = Instant::now();
        let expired: Vec<u64> = sessions
            .iter()
            .filter(|(_, s)| s.drain_deadline.is_some_and(|d| d <= now))
            .map(|(k, _)| *k)
            .collect();
        for k in expired {
            let s = sessions.remove(&k).expect("present");
            teardown(&mut poller, &mut per_backend, k, s);
        }

        // Block until a socket is ready or the shutdown waker fires. Only
        // parked dials and lingering drains need a timed wake-up;
        // otherwise the relay performs no periodic work at all.
        let timeout = parked
            .iter()
            .map(|p| p.next_try.saturating_duration_since(now))
            .chain(
                sessions
                    .values()
                    .filter_map(|s| s.drain_deadline)
                    .map(|d| d.saturating_duration_since(now)),
            )
            .min();
        if poller.wait(&mut events, timeout).is_err() {
            events.clear();
        }
    }
    for (_, mut s) in sessions.drain() {
        s.client.shutdown();
        s.backend.shutdown();
    }
    for mut p in parked.drain(..) {
        p.client.shutdown();
    }
}

/// Deregister and fully close a finished (or reaped) session.
fn teardown(poller: &mut TcpPoller, per_backend: &mut [usize], k: u64, mut s: Session) {
    let _ = poller.deregister(2 * k, &s.client);
    let _ = poller.deregister(2 * k + 1, &s.backend);
    s.client.shutdown();
    s.backend.shutdown();
    per_backend[s.backend_index] -= 1;
}

/// Move bytes from `from` towards `to` through `pending`. Returns whether
/// anything moved.
fn pump(
    from: &mut TcpStreamNb,
    to: &mut TcpStreamNb,
    pending: &mut BytesMut,
    from_eof: &mut bool,
    scratch: &mut [u8],
    counter: &AtomicU64,
) -> bool {
    let mut moved = false;
    // Read as much as is available right now.
    if !*from_eof {
        for _ in 0..4 {
            match from.try_read(scratch) {
                Ok(ReadOutcome::Data(n)) => {
                    pending.extend_from_slice(&scratch[..n]);
                    moved = true;
                }
                Ok(ReadOutcome::WouldBlock) => break,
                Ok(ReadOutcome::Closed) | Err(_) => {
                    *from_eof = true;
                    break;
                }
            }
        }
    }
    // Flush what we can.
    while !pending.is_empty() {
        match to.try_write(pending) {
            Ok(0) => break,
            Ok(n) => {
                let _ = pending.split_to(n);
                counter.fetch_add(n as u64, Ordering::Relaxed);
                moved = true;
            }
            Err(_) => {
                pending.clear();
                *from_eof = true;
                break;
            }
        }
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::ServerOptions;
    use crate::pipeline::{Action, Codec, ConnCtx, ProtocolError, Service};
    use crate::server::{ServerBuilder, ServerHandle};
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::time::Duration;

    struct TagCodec;

    impl Codec for TagCodec {
        type Request = String;
        type Response = String;

        fn decode(&self, buf: &mut BytesMut) -> Result<Option<String>, ProtocolError> {
            match buf.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    let line = buf.split_to(i + 1);
                    Ok(Some(String::from_utf8_lossy(&line[..i]).into_owned()))
                }
                None => Ok(None),
            }
        }

        fn encode(&self, r: &String, out: &mut BytesMut) -> Result<(), ProtocolError> {
            out.extend_from_slice(r.as_bytes());
            out.extend_from_slice(b"\n");
            Ok(())
        }
    }

    struct TagService(&'static str);

    impl Service<TagCodec> for TagService {
        fn handle(&self, _ctx: &ConnCtx, req: String) -> Action<String> {
            Action::Reply(format!("{}:{}", self.0, req))
        }
    }

    fn backend(tag: &'static str) -> ServerHandle<TagCodec, TagService> {
        ServerBuilder::new(ServerOptions::default(), TagCodec, TagService(tag))
            .unwrap()
            .serve(TcpListenerNb::bind("127.0.0.1:0").unwrap())
    }

    fn ask(addr: &str, msg: &str) -> String {
        let mut c = TcpStream::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        c.write_all(msg.as_bytes()).unwrap();
        c.write_all(b"\n").unwrap();
        let mut acc = Vec::new();
        let mut buf = [0u8; 256];
        while !acc.contains(&b'\n') {
            let n = c.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            acc.extend_from_slice(&buf[..n]);
        }
        String::from_utf8_lossy(&acc).trim_end().to_string()
    }

    #[test]
    fn round_robin_distributes_across_backends() {
        let b1 = backend("alpha");
        let b2 = backend("beta");
        let front = ClusterFrontEnd::start(
            TcpListenerNb::bind("127.0.0.1:0").unwrap(),
            vec![b1.local_label().to_string(), b2.local_label().to_string()],
            Balancing::RoundRobin,
        )
        .unwrap();
        let addr = front.local_label().to_string();

        let mut tags = Vec::new();
        for i in 0..6 {
            let reply = ask(&addr, &format!("m{i}"));
            let tag = reply.split(':').next().unwrap().to_string();
            assert!(reply.ends_with(&format!("m{i}")), "{reply}");
            tags.push(tag);
        }
        let alphas = tags.iter().filter(|t| *t == "alpha").count();
        let betas = tags.iter().filter(|t| *t == "beta").count();
        assert_eq!(alphas, 3, "{tags:?}");
        assert_eq!(betas, 3, "{tags:?}");
        assert_eq!(front.stats().connections.load(Ordering::Relaxed), 6);
        assert!(front.stats().bytes_upstream.load(Ordering::Relaxed) > 0);
        assert!(front.stats().bytes_downstream.load(Ordering::Relaxed) > 0);

        front.shutdown();
        b1.shutdown();
        b2.shutdown();
    }

    #[test]
    fn least_connections_prefers_idle_backend() {
        let b1 = backend("one");
        let b2 = backend("two");
        let front = ClusterFrontEnd::start(
            TcpListenerNb::bind("127.0.0.1:0").unwrap(),
            vec![b1.local_label().to_string(), b2.local_label().to_string()],
            Balancing::LeastConnections,
        )
        .unwrap();
        let addr = front.local_label().to_string();

        // Hold one connection open (goes to backend 0), then open more:
        // they should alternate to keep loads level.
        let mut held = TcpStream::connect(&addr).unwrap();
        held.write_all(b"held\n").unwrap();
        // Deterministic sync: the relay counts the connection only after
        // dialing its backend, so the next accept sees the load imbalance.
        for _ in 0..5000 {
            if front.stats().connections.load(Ordering::Relaxed) >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(front.stats().connections.load(Ordering::Relaxed), 1);
        let r1 = ask(&addr, "x");
        assert!(
            r1.starts_with("two:"),
            "least-loaded backend expected: {r1}"
        );
        drop(held);
        front.shutdown();
        b1.shutdown();
        b2.shutdown();
    }

    #[test]
    fn unreachable_backend_counts_failure_and_closes_client() {
        let front = ClusterFrontEnd::start(
            TcpListenerNb::bind("127.0.0.1:0").unwrap(),
            vec!["127.0.0.1:1".to_string()], // nothing listens there
            Balancing::RoundRobin,
        )
        .unwrap();
        let addr = front.local_label().to_string();
        let mut c = TcpStream::connect(&addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut buf = [0u8; 16];
        // Expect prompt close (read returns 0) rather than a hang.
        let mut saw_close = false;
        for _ in 0..100 {
            match c.read(&mut buf) {
                Ok(0) => {
                    saw_close = true;
                    break;
                }
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => {
                    saw_close = true;
                    break;
                }
            }
        }
        assert!(saw_close);
        assert!(front.stats().backend_failures.load(Ordering::Relaxed) >= 1);
        front.shutdown();
    }

    #[test]
    fn failed_dial_retries_against_the_next_backend() {
        let live = backend("live");
        let front = ClusterFrontEnd::start_with_retry(
            TcpListenerNb::bind("127.0.0.1:0").unwrap(),
            vec![
                "127.0.0.1:1".to_string(), // dead: round-robin dials it first
                live.local_label().to_string(),
            ],
            Balancing::RoundRobin,
            RetryPolicy {
                attempts: 3,
                backoff: Duration::from_millis(10),
            },
        )
        .unwrap();
        let addr = front.local_label().to_string();

        // The first dial fails; the retry rotates to the live backend and
        // the client is served rather than dropped.
        let reply = ask(&addr, "ping");
        assert_eq!(reply, "live:ping");
        assert!(front.stats().dial_retries.load(Ordering::Relaxed) >= 1);
        assert_eq!(front.stats().backend_failures.load(Ordering::Relaxed), 0);
        front.shutdown();
        live.shutdown();
    }

    #[test]
    fn exhausted_retries_fail_the_client() {
        let front = ClusterFrontEnd::start_with_retry(
            TcpListenerNb::bind("127.0.0.1:0").unwrap(),
            vec!["127.0.0.1:1".to_string()],
            Balancing::RoundRobin,
            RetryPolicy {
                attempts: 2,
                backoff: Duration::from_millis(5),
            },
        )
        .unwrap();
        let addr = front.local_label().to_string();
        let mut c = TcpStream::connect(&addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = [0u8; 8];
        let closed = matches!(c.read(&mut buf), Ok(0) | Err(_));
        assert!(closed, "client must be closed after retries exhaust");
        assert_eq!(front.stats().dial_retries.load(Ordering::Relaxed), 1);
        assert!(front.stats().backend_failures.load(Ordering::Relaxed) >= 1);
        front.shutdown();
    }

    #[test]
    fn empty_backend_list_is_rejected() {
        let err = ClusterFrontEnd::start(
            TcpListenerNb::bind("127.0.0.1:0").unwrap(),
            vec![],
            Balancing::RoundRobin,
        )
        .err()
        .expect("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
