//! Per-stage latency histograms, queue-depth gauges and metrics
//! exposition (template option O11).
//!
//! The paper's performance profiling option stops at lifetime counters
//! ([`crate::profiling`]). This module adds the latency dimension: a
//! logarithmic power-of-two histogram (promoted from
//! `nserver-netsim::stats`, which now delegates its bucket math here) is
//! kept per pipeline stage — accept→header-read, decode, handle, encode
//! and write-drain — plus a queue-depth gauge with a decaying high-water
//! mark for the Event Processor queue.
//!
//! Everything hangs off a [`MetricsRegistry`]. With O11 = No the registry
//! is *disabled*: every record call returns before touching an atomic or
//! reading a clock, so the profiling-off fast path costs nothing
//! measurable. The internal `samples` counter pins that property in
//! tests: a disabled registry must report zero samples after any run.
//!
//! Exposition is hand-rolled (the workspace carries no serde):
//! [`prometheus_text`] renders counters + histograms in the Prometheus
//! text format, [`trace_jsonl`] renders a [`DebugTracer`] dump as one
//! JSON object per line.
//!
//! [`DebugTracer`]: crate::trace::DebugTracer

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::profiling::StatsSnapshot;
use crate::trace::TraceRecord;

/// Bucket index of a microsecond value: bucket `i` covers
/// `[2^i, 2^(i+1))` with the first bucket absorbing 0 and 1.
pub fn bucket_of(us: u64) -> usize {
    if us < 2 {
        0
    } else {
        63 - us.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` in microseconds (the value a
/// quantile query reports for samples landing in that bucket).
pub fn bucket_upper_us(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (2u64 << i) - 1
    }
}

/// The five framework pipeline stages a request passes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Accept to first request bytes readable (header read).
    AcceptToHeader,
    /// Decode Request hook.
    Decode,
    /// Handle Request hook.
    Handle,
    /// Encode Reply hook.
    Encode,
    /// Send Reply: outbox first non-empty until fully drained.
    WriteDrain,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 5] = [
        Stage::AcceptToHeader,
        Stage::Decode,
        Stage::Handle,
        Stage::Encode,
        Stage::WriteDrain,
    ];

    /// Stable exposition name (Prometheus label value).
    pub fn name(&self) -> &'static str {
        match self {
            Stage::AcceptToHeader => "accept_to_header",
            Stage::Decode => "decode",
            Stage::Handle => "handle",
            Stage::Encode => "encode",
            Stage::WriteDrain => "write_drain",
        }
    }

    fn index(&self) -> usize {
        match self {
            Stage::AcceptToHeader => 0,
            Stage::Decode => 1,
            Stage::Handle => 2,
            Stage::Encode => 3,
            Stage::WriteDrain => 4,
        }
    }
}

/// A thread-safe logarithmic histogram of microsecond durations: 64
/// power-of-two buckets, relaxed atomics (observability, not
/// synchronization).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; 64],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one duration in microseconds.
    pub fn record_us(&self, us: u64) {
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time plain copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; 64];
        for (dst, src) in buckets.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
        }
    }
}

/// A plain, mergeable copy of a [`Histogram`] — what snapshots, shard
/// merges and exposition work on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts.
    pub buckets: [u64; 64],
    /// Total samples.
    pub count: u64,
    /// Sum of all recorded values (saturating).
    pub sum_us: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; 64],
            count: 0,
            sum_us: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Merge two shards. Saturating adds keep the operation associative
    /// and commutative even at the extremes, so per-thread shards can be
    /// folded in any order.
    pub fn merge(mut self, other: HistogramSnapshot) -> HistogramSnapshot {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self
    }

    /// Mean recorded value in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }

    /// Per-bucket saturating difference `self - earlier`: the samples
    /// recorded *between* two cumulative snapshots. The watchdog's
    /// sliding-window p99 burn-rate check is built on this — it diffs the
    /// stage histogram against the previous tick and asks the window for
    /// its quantile.
    pub fn saturating_sub(mut self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        for (a, b) in self.buckets.iter_mut().zip(&earlier.buckets) {
            *a = a.saturating_sub(*b);
        }
        self.count = self.count.saturating_sub(earlier.count);
        self.sum_us = self.sum_us.saturating_sub(earlier.sum_us);
        self
    }

    /// Quantile estimate: the upper bound of the bucket holding the
    /// `q`-quantile sample (0 when empty). Same interpolation-free
    /// estimator as the netsim twin, so the two agree bucket-for-bucket.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_upper_us(i);
            }
        }
        u64::MAX
    }
}

/// A gauge with a decaying high-water mark: `observe` tracks the current
/// value and raises the mark; each snapshot reports the mark, then decays
/// it a quarter of the way back toward the current value — old bursts
/// fade instead of pinning the mark forever.
#[derive(Debug, Default)]
pub struct Gauge {
    current: AtomicU64,
    high_water: AtomicU64,
}

impl Gauge {
    /// Record the current value.
    pub fn observe(&self, v: u64) {
        self.current.store(v, Ordering::Relaxed);
        self.high_water.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn current(&self) -> u64 {
        self.current.load(Ordering::Relaxed)
    }

    /// Report the high-water mark and decay it toward the current value.
    pub fn high_water_decaying(&self) -> u64 {
        let cur = self.current.load(Ordering::Relaxed);
        let high = self.high_water.load(Ordering::Relaxed);
        let decayed = cur.max(high - high / 4);
        self.high_water.store(decayed, Ordering::Relaxed);
        high
    }
}

/// The O11 registry: per-stage latency histograms plus the Event
/// Processor queue-depth gauge. Disabled (`O11 = No`), every record path
/// returns before touching a clock or an atomic.
#[derive(Debug)]
pub struct MetricsRegistry {
    enabled: bool,
    stages: [Histogram; 5],
    samples: AtomicU64,
    queue_depth: Gauge,
    queue_wait: Histogram,
}

impl MetricsRegistry {
    /// An enabled registry (O11 = Yes).
    pub fn enabled() -> Arc<Self> {
        Arc::new(Self {
            enabled: true,
            stages: Default::default(),
            samples: AtomicU64::new(0),
            queue_depth: Gauge::default(),
            queue_wait: Histogram::new(),
        })
    }

    /// A disabled registry: the profiling-off fast path (O11 = No).
    pub fn disabled() -> Arc<Self> {
        Arc::new(Self {
            enabled: false,
            stages: Default::default(),
            samples: AtomicU64::new(0),
            queue_depth: Gauge::default(),
            queue_wait: Histogram::new(),
        })
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a stage duration in microseconds. No-op when disabled.
    pub fn record_stage(&self, stage: Stage, us: u64) {
        if !self.enabled {
            return;
        }
        self.stages[stage.index()].record_us(us);
        self.samples.fetch_add(1, Ordering::Relaxed);
    }

    /// Record the Event Processor queue depth. No-op when disabled.
    pub fn observe_queue_depth(&self, depth: u64) {
        if !self.enabled {
            return;
        }
        self.queue_depth.observe(depth);
    }

    /// Record one enqueue→dequeue delay of the Event Processor queue in
    /// microseconds. No-op when disabled (the queue does not even read
    /// the clock then — see [`crate::queue::BlockingQueue`]).
    pub fn record_queue_wait(&self, us: u64) {
        if !self.enabled {
            return;
        }
        self.queue_wait.record_us(us);
        self.samples.fetch_add(1, Ordering::Relaxed);
    }

    /// Total histogram samples recorded — the counter-registry pin for
    /// the no-op fast path: a disabled registry must stay at zero.
    pub fn samples_recorded(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }

    /// Snapshot one stage's histogram.
    pub fn stage(&self, stage: Stage) -> HistogramSnapshot {
        self.stages[stage.index()].snapshot()
    }

    /// Snapshot every stage plus the queue gauge (decaying the high-water
    /// mark as a side effect).
    pub fn latency_snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            stages: [
                self.stages[0].snapshot(),
                self.stages[1].snapshot(),
                self.stages[2].snapshot(),
                self.stages[3].snapshot(),
                self.stages[4].snapshot(),
            ],
            queue_depth: self.queue_depth.current(),
            queue_depth_high_water: self.queue_depth.high_water_decaying(),
            queue_wait: self.queue_wait.snapshot(),
        }
    }
}

/// Point-in-time copy of every per-stage histogram and the queue gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySnapshot {
    /// Per-stage histograms, indexed as [`Stage::ALL`].
    pub stages: [HistogramSnapshot; 5],
    /// Event Processor queue depth at snapshot time.
    pub queue_depth: u64,
    /// Decaying high-water mark of the queue depth.
    pub queue_depth_high_water: u64,
    /// Enqueue→dequeue delay histogram of the Event Processor queue.
    pub queue_wait: HistogramSnapshot,
}

impl LatencySnapshot {
    /// One stage's histogram.
    pub fn stage(&self, stage: Stage) -> &HistogramSnapshot {
        &self.stages[stage.index()]
    }

    /// Samples across every stage.
    pub fn total_samples(&self) -> u64 {
        self.stages.iter().map(|h| h.count).sum()
    }
}

/// File-cache statistics as the exposition layer sees them. The cache
/// itself lives in `nserver-cache` (which depends on this crate), so the
/// application plugs a sampled copy in rather than the cache handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[allow(missing_docs)]
pub struct CacheSample {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub rejected: u64,
    pub coalesced_waits: u64,
    pub used_bytes: u64,
    pub capacity_bytes: u64,
}

/// Overload-controller state for exposition: the paused flag plus the
/// shed/pause/resume transition counters (O9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[allow(missing_docs)]
pub struct OverloadSample {
    pub paused: bool,
    pub pause_transitions: u64,
    pub resume_transitions: u64,
}

/// Worker-pool occupancy gauges sampled from the diagnostics worker
/// table ([`crate::diag::WorkerStateTable`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[allow(missing_docs)]
pub struct WorkerGauges {
    pub running: u64,
    pub idle: u64,
}

/// Optional metric families beyond the core counters + stage histograms.
/// [`prometheus_text`] renders none of them; the diagnostics hub
/// ([`crate::diag::DiagHub`]) fills in what the server actually has.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExpositionExtras {
    /// File-cache statistics (O6), when a cache is attached.
    pub cache: Option<CacheSample>,
    /// Overload controller state (O9), when overload control is on.
    pub overload: Option<OverloadSample>,
    /// Trace-ring records evicted so far (O10 ring overflow).
    pub trace_dropped: u64,
    /// Worker-table occupancy, when a worker table is wired.
    pub workers: Option<WorkerGauges>,
    /// Watchdog trigger count, when a watchdog is running.
    pub watchdog_triggers: Option<u64>,
    /// Diagnostic snapshots captured (watchdog + on-demand).
    pub snapshots_captured: Option<u64>,
}

/// Render one `# HELP` + `# TYPE` family header.
fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

/// Render counters + per-stage latency histograms in the Prometheus text
/// exposition format (hand-rolled; the workspace carries no serde). This
/// is what the COPS-HTTP `/server-status` route and the COPS-FTP `STAT`
/// command serve. Servers with more to tell (cache, overload, worker
/// table, watchdog) render through [`prometheus_text_with`].
pub fn prometheus_text(stats: &StatsSnapshot, lat: &LatencySnapshot) -> String {
    prometheus_text_with(stats, lat, &ExpositionExtras::default())
}

/// [`prometheus_text`] plus the optional families in `extras`. Every
/// family carries `# HELP` and `# TYPE` headers and appears exactly once,
/// so the output survives a strict text-format parser.
pub fn prometheus_text_with(
    stats: &StatsSnapshot,
    lat: &LatencySnapshot,
    extras: &ExpositionExtras,
) -> String {
    let mut out = String::with_capacity(8192);
    for (name, v) in stats.rows() {
        let metric = name.replace(' ', "_");
        family(
            &mut out,
            &format!("nserver_{metric}"),
            "counter",
            &format!("Lifetime count of {name}."),
        );
        out.push_str(&format!("nserver_{metric} {v}\n"));
    }
    family(
        &mut out,
        "nserver_stage_latency_us",
        "histogram",
        "Per-stage pipeline latency in microseconds.",
    );
    for stage in Stage::ALL {
        let h = lat.stage(stage);
        let name = stage.name();
        let last = h.buckets.iter().rposition(|&n| n > 0).map_or(0, |i| i + 1);
        let mut cum = 0u64;
        for (i, &n) in h.buckets.iter().take(last).enumerate() {
            cum += n;
            out.push_str(&format!(
                "nserver_stage_latency_us_bucket{{stage=\"{name}\",le=\"{}\"}} {cum}\n",
                bucket_upper_us(i)
            ));
        }
        out.push_str(&format!(
            "nserver_stage_latency_us_bucket{{stage=\"{name}\",le=\"+Inf\"}} {}\n",
            h.count
        ));
        out.push_str(&format!(
            "nserver_stage_latency_us_sum{{stage=\"{name}\"}} {}\n",
            h.sum_us
        ));
        out.push_str(&format!(
            "nserver_stage_latency_us_count{{stage=\"{name}\"}} {}\n",
            h.count
        ));
    }
    family(
        &mut out,
        "nserver_stage_latency_quantile_us",
        "gauge",
        "Per-stage latency quantile estimates in microseconds.",
    );
    for stage in Stage::ALL {
        let h = lat.stage(stage);
        let name = stage.name();
        for (label, q) in [("0.5", 0.5), ("0.99", 0.99)] {
            out.push_str(&format!(
                "nserver_stage_latency_quantile_us{{stage=\"{name}\",quantile=\"{label}\"}} {}\n",
                h.quantile_us(q)
            ));
        }
    }
    family(
        &mut out,
        "nserver_queue_wait_us",
        "histogram",
        "Event Processor enqueue-to-dequeue delay in microseconds.",
    );
    {
        let h = &lat.queue_wait;
        let last = h.buckets.iter().rposition(|&n| n > 0).map_or(0, |i| i + 1);
        let mut cum = 0u64;
        for (i, &n) in h.buckets.iter().take(last).enumerate() {
            cum += n;
            out.push_str(&format!(
                "nserver_queue_wait_us_bucket{{le=\"{}\"}} {cum}\n",
                bucket_upper_us(i)
            ));
        }
        out.push_str(&format!(
            "nserver_queue_wait_us_bucket{{le=\"+Inf\"}} {}\n",
            h.count
        ));
        out.push_str(&format!("nserver_queue_wait_us_sum {}\n", h.sum_us));
        out.push_str(&format!("nserver_queue_wait_us_count {}\n", h.count));
    }
    family(
        &mut out,
        "nserver_queue_wait_quantile_us",
        "gauge",
        "Queue-wait quantile estimates in microseconds.",
    );
    for (label, q) in [("0.5", 0.5), ("0.99", 0.99)] {
        out.push_str(&format!(
            "nserver_queue_wait_quantile_us{{quantile=\"{label}\"}} {}\n",
            lat.queue_wait.quantile_us(q)
        ));
    }
    family(
        &mut out,
        "nserver_queue_depth",
        "gauge",
        "Event Processor queue depth.",
    );
    out.push_str(&format!("nserver_queue_depth {}\n", lat.queue_depth));
    family(
        &mut out,
        "nserver_queue_depth_high_water",
        "gauge",
        "Decaying high-water mark of the queue depth.",
    );
    out.push_str(&format!(
        "nserver_queue_depth_high_water {}\n",
        lat.queue_depth_high_water
    ));
    family(
        &mut out,
        "nserver_trace_dropped_spans",
        "counter",
        "Trace-ring records evicted by overflow (lossy trace windows).",
    );
    out.push_str(&format!(
        "nserver_trace_dropped_spans {}\n",
        extras.trace_dropped
    ));
    if let Some(c) = &extras.cache {
        for (name, v, help) in [
            ("nserver_cache_hits", c.hits, "File-cache hits."),
            ("nserver_cache_misses", c.misses, "File-cache misses."),
            (
                "nserver_cache_evictions",
                c.evictions,
                "File-cache evictions.",
            ),
            (
                "nserver_cache_rejected",
                c.rejected,
                "Oversized inserts the file cache refused.",
            ),
            (
                "nserver_cache_coalesced_waits",
                c.coalesced_waits,
                "Cache misses served by waiting on another loader (single-flight).",
            ),
        ] {
            family(&mut out, name, "counter", help);
            out.push_str(&format!("{name} {v}\n"));
        }
        family(
            &mut out,
            "nserver_cache_used_bytes",
            "gauge",
            "Bytes currently cached.",
        );
        out.push_str(&format!("nserver_cache_used_bytes {}\n", c.used_bytes));
        family(
            &mut out,
            "nserver_cache_capacity_bytes",
            "gauge",
            "Configured cache capacity in bytes.",
        );
        out.push_str(&format!(
            "nserver_cache_capacity_bytes {}\n",
            c.capacity_bytes
        ));
    }
    if let Some(o) = &extras.overload {
        family(
            &mut out,
            "nserver_overload_paused",
            "gauge",
            "1 while the overload controller is shedding accepts.",
        );
        out.push_str(&format!(
            "nserver_overload_paused {}\n",
            u64::from(o.paused)
        ));
        family(
            &mut out,
            "nserver_overload_pauses",
            "counter",
            "Transitions into the shedding state (high watermark crossed).",
        );
        out.push_str(&format!(
            "nserver_overload_pauses {}\n",
            o.pause_transitions
        ));
        family(
            &mut out,
            "nserver_overload_resumes",
            "counter",
            "Transitions back to accepting (low watermark crossed).",
        );
        out.push_str(&format!(
            "nserver_overload_resumes {}\n",
            o.resume_transitions
        ));
    }
    if let Some(w) = &extras.workers {
        family(
            &mut out,
            "nserver_workers_running",
            "gauge",
            "Worker-table slots currently executing a stage.",
        );
        out.push_str(&format!("nserver_workers_running {}\n", w.running));
        family(
            &mut out,
            "nserver_workers_idle",
            "gauge",
            "Worker-table slots currently idle.",
        );
        out.push_str(&format!("nserver_workers_idle {}\n", w.idle));
    }
    if let Some(t) = extras.watchdog_triggers {
        family(
            &mut out,
            "nserver_watchdog_triggers",
            "counter",
            "Watchdog invariant violations detected.",
        );
        out.push_str(&format!("nserver_watchdog_triggers {t}\n"));
    }
    if let Some(s) = extras.snapshots_captured {
        family(
            &mut out,
            "nserver_diag_snapshots",
            "counter",
            "Diagnostic snapshots captured (watchdog-triggered and on-demand).",
        );
        out.push_str(&format!("nserver_diag_snapshots {s}\n"));
    }
    out
}

/// Escape a string for embedding inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a trace dump as JSONL: one object per record, span records
/// carrying their typed event name and ACT sequence number.
pub fn trace_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 64);
    for r in records {
        out.push_str(&format!("{{\"at_us\":{},\"kind\":\"{}\"", r.at_us, r.kind));
        if let Some(c) = r.conn {
            out.push_str(&format!(",\"conn\":{c}"));
        }
        if let Some(span) = r.span {
            out.push_str(&format!(",\"span\":\"{}\"", span.name()));
            if let Some(seq) = span.seq() {
                out.push_str(&format!(",\"seq\":{seq}"));
            }
        }
        if !r.detail.is_empty() {
            out.push_str(&format!(",\"detail\":\"{}\"", json_escape(&r.detail)));
        }
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_math_matches_the_netsim_twin() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_upper_us(0), 1);
        assert_eq!(bucket_upper_us(1), 3);
        assert_eq!(bucket_upper_us(62), (2u64 << 62) - 1);
        assert_eq!(bucket_upper_us(63), u64::MAX);
    }

    #[test]
    fn histogram_counts_and_means() {
        let h = Histogram::new();
        for us in [1, 2, 4, 8] {
            h.record_us(us);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum_us, 15);
        assert_eq!(s.mean_us(), 3);
        assert_eq!(s.quantile_us(1.0), 15); // bucket of 8 spans 8..=15
    }

    #[test]
    fn quantiles_are_monotone() {
        let h = Histogram::new();
        for us in 1..=1000 {
            h.record_us(us);
        }
        let s = h.snapshot();
        let q50 = s.quantile_us(0.5);
        let q99 = s.quantile_us(0.99);
        assert!(q50 <= q99);
        assert!((500..=1023).contains(&q50), "q50 {q50}");
    }

    #[test]
    fn merge_adds_shards() {
        let a = {
            let h = Histogram::new();
            h.record_us(3);
            h.snapshot()
        };
        let b = {
            let h = Histogram::new();
            h.record_us(100);
            h.record_us(200);
            h.snapshot()
        };
        let m = a.merge(b);
        assert_eq!(m.count, 3);
        assert_eq!(m.sum_us, 303);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let m = MetricsRegistry::disabled();
        m.record_stage(Stage::Decode, 42);
        m.observe_queue_depth(7);
        assert_eq!(m.samples_recorded(), 0);
        assert_eq!(m.latency_snapshot().total_samples(), 0);
        assert_eq!(m.latency_snapshot().queue_depth_high_water, 0);
    }

    #[test]
    fn enabled_registry_records_per_stage() {
        let m = MetricsRegistry::enabled();
        m.record_stage(Stage::Decode, 10);
        m.record_stage(Stage::Handle, 20);
        m.record_stage(Stage::Handle, 30);
        assert_eq!(m.samples_recorded(), 3);
        let lat = m.latency_snapshot();
        assert_eq!(lat.stage(Stage::Decode).count, 1);
        assert_eq!(lat.stage(Stage::Handle).count, 2);
        assert_eq!(lat.total_samples(), 3);
    }

    #[test]
    fn gauge_high_water_decays_toward_current() {
        let g = Gauge::default();
        g.observe(100);
        g.observe(4);
        assert_eq!(g.current(), 4);
        assert_eq!(g.high_water_decaying(), 100); // reports, then decays
        assert_eq!(g.high_water_decaying(), 75);
        for _ in 0..40 {
            g.high_water_decaying();
        }
        assert_eq!(g.high_water_decaying(), 4); // floored at current
    }

    #[test]
    fn prometheus_text_has_counters_and_quantiles() {
        let m = MetricsRegistry::enabled();
        m.record_stage(Stage::Decode, 5);
        let stats = StatsSnapshot {
            requests_decoded: 1,
            ..Default::default()
        };
        let text = prometheus_text(&stats, &m.latency_snapshot());
        assert!(text.contains("nserver_requests_decoded 1"));
        assert!(text.contains("nserver_stage_latency_us_count{stage=\"decode\"} 1"));
        assert!(text.contains("stage=\"decode\",quantile=\"0.99\""));
        assert!(text.contains("nserver_queue_depth 0"));
        // every stage appears even when empty
        for stage in Stage::ALL {
            assert!(text.contains(&format!("stage=\"{}\"", stage.name())));
        }
    }

    #[test]
    fn trace_jsonl_renders_one_object_per_record() {
        use crate::event::EventKind;
        use crate::trace::{DebugTracer, SpanEvent};
        let t = DebugTracer::enabled(8);
        t.span(SpanEvent::Decode { seq: 3 }, 7);
        t.record(EventKind::Timer, None, "say \"hi\"");
        let text = trace_jsonl(&t.dump());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"span\":\"decode\""));
        assert!(lines[0].contains("\"seq\":3"));
        assert!(lines[0].contains("\"conn\":7"));
        assert!(lines[1].contains("\\\"hi\\\""));
    }
}
