//! The Decode Request / Encode Reply hooks for COPS-FTP: CRLF-delimited
//! command lines in, preformatted reply text out.

use bytes::BytesMut;
use nserver_core::pipeline::{Codec, ProtocolError};

use crate::commands::Command;

/// Control-connection codec. Requests are parsed [`Command`]s (or the
/// parse error to report); responses are fully formatted reply strings
/// (possibly multiple `NNN text\r\n` lines, e.g. `150` + `226`).
#[derive(Debug, Default, Clone, Copy)]
pub struct FtpCodec;

/// What decoding one line produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FtpRequest {
    /// A well-formed command.
    Command(Command),
    /// A malformed line; the service answers 500 with this detail rather
    /// than dropping the connection (FTP is chatty about errors).
    Malformed(String),
}

/// Hard cap on one command line.
const MAX_LINE: usize = 4096;

impl Codec for FtpCodec {
    type Request = FtpRequest;
    type Response = String;

    fn decode(&self, buf: &mut BytesMut) -> Result<Option<FtpRequest>, ProtocolError> {
        let pos = match buf.iter().position(|&b| b == b'\n') {
            Some(p) => p,
            None => {
                if buf.len() > MAX_LINE {
                    return Err(ProtocolError("command line too long".into()));
                }
                return Ok(None);
            }
        };
        let line = buf.split_to(pos + 1);
        let text = String::from_utf8_lossy(&line[..pos]);
        match Command::parse(&text) {
            Ok(cmd) => Ok(Some(FtpRequest::Command(cmd))),
            Err(why) => Ok(Some(FtpRequest::Malformed(why))),
        }
    }

    fn encode(&self, resp: &String, out: &mut BytesMut) -> Result<(), ProtocolError> {
        out.extend_from_slice(resp.as_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_one_command_per_line() {
        let c = FtpCodec;
        let mut buf = BytesMut::from(&b"USER a\r\nPASS b\r\n"[..]);
        assert_eq!(
            c.decode(&mut buf).unwrap(),
            Some(FtpRequest::Command(Command::User("a".into())))
        );
        assert_eq!(
            c.decode(&mut buf).unwrap(),
            Some(FtpRequest::Command(Command::Pass("b".into())))
        );
        assert_eq!(c.decode(&mut buf).unwrap(), None);
    }

    #[test]
    fn malformed_lines_become_requests_not_errors() {
        let c = FtpCodec;
        let mut buf = BytesMut::from(&b"RETR\r\n"[..]);
        match c.decode(&mut buf).unwrap().unwrap() {
            FtpRequest::Malformed(why) => assert!(why.contains("RETR")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bare_lf_is_accepted() {
        let c = FtpCodec;
        let mut buf = BytesMut::from(&b"QUIT\n"[..]);
        assert_eq!(
            c.decode(&mut buf).unwrap(),
            Some(FtpRequest::Command(Command::Quit))
        );
    }

    #[test]
    fn oversized_line_is_protocol_error() {
        let c = FtpCodec;
        let mut buf = BytesMut::from(vec![b'a'; MAX_LINE + 1].as_slice());
        assert!(c.decode(&mut buf).is_err());
    }

    #[test]
    fn encode_passes_reply_text_through() {
        let c = FtpCodec;
        let mut out = BytesMut::new();
        c.encode(&"150 ok\r\n226 done\r\n".to_string(), &mut out)
            .unwrap();
        assert_eq!(&out[..], b"150 ok\r\n226 done\r\n");
    }

    #[test]
    fn segmented_encode_reply_matches_flat_encode() {
        // FTP replies are small control lines, so the codec keeps the
        // default (owned-segment) `encode_reply`; the wire image must be
        // byte-identical to the flat `encode` path either way.
        use nserver_core::pipeline::{EncodedReply, Outbox};
        let c = FtpCodec;
        let resp = "150 ok\r\n226 done\r\n".to_string();
        let mut flat = BytesMut::new();
        c.encode(&resp, &mut flat).unwrap();

        let mut reply = EncodedReply::new();
        c.encode_reply(&resp, &mut reply).unwrap();
        assert_eq!(reply.len(), flat.len());
        let mut outbox = Outbox::new();
        outbox.push_reply(reply);
        assert_eq!(outbox.to_vec(), flat.to_vec());
    }
}
