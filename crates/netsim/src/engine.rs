//! The discrete-event engine: a time-ordered event heap and a run loop.
//!
//! Experiments define a [`Model`] with a single event enum; reusable
//! components ([`crate::Link`], [`crate::CpuPool`], …) are *passive* — they
//! compute completion times and the model schedules its own events at those
//! times. This keeps the engine free of trait objects and lifetimes while
//! still letting every experiment share the same substrate.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A simulation model: owns all world state and interprets events.
pub trait Model {
    /// The model's event type.
    type Ev;

    /// Handle one event at virtual time `now`, scheduling follow-ups.
    fn handle(&mut self, now: SimTime, ev: Self::Ev, sched: &mut Scheduler<Self::Ev>);
}

struct Scheduled<Ev> {
    time: SimTime,
    seq: u64,
    ev: Ev,
}

impl<Ev> PartialEq for Scheduled<Ev> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<Ev> Eq for Scheduled<Ev> {}
impl<Ev> PartialOrd for Scheduled<Ev> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<Ev> Ord for Scheduled<Ev> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        // Ties break by insertion sequence, making runs fully deterministic.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// The event queue plus virtual clock.
pub struct Scheduler<Ev> {
    heap: BinaryHeap<Scheduled<Ev>>,
    seq: u64,
    now: SimTime,
    processed: u64,
}

impl<Ev> Default for Scheduler<Ev> {
    fn default() -> Self {
        Self::new()
    }
}

impl<Ev> Scheduler<Ev> {
    /// Create an empty scheduler at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `ev` at absolute time `t`. Scheduling in the past is a bug
    /// in the model; the event is clamped to `now` with a debug assertion.
    pub fn at(&mut self, t: SimTime, ev: Ev) {
        debug_assert!(t >= self.now, "scheduled event in the past");
        let time = t.max(self.now);
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            ev,
        });
        self.seq += 1;
    }

    /// Schedule `ev` after a relative `delay`.
    pub fn after(&mut self, delay: SimTime, ev: Ev) {
        let t = self.now + delay;
        self.at(t, ev);
    }

    fn pop(&mut self) -> Option<(SimTime, Ev)> {
        self.heap.pop().map(|s| (s.time, s.ev))
    }

    /// Run the model until the clock passes `end` or no events remain.
    /// Events scheduled exactly at `end` are still processed. Returns the
    /// number of events dispatched during this call.
    pub fn run_until<M: Model<Ev = Ev>>(&mut self, model: &mut M, end: SimTime) -> u64 {
        let start_count = self.processed;
        while let Some(&Scheduled { time, .. }) = self.heap.peek().map(|s| s as _) {
            if time > end {
                break;
            }
            let (time, ev) = self.pop().expect("peeked");
            debug_assert!(time >= self.now, "event heap delivered out of order");
            self.now = time;
            self.processed += 1;
            model.handle(time, ev, self);
        }
        self.now = self.now.max(end);
        self.processed - start_count
    }

    /// Run the model to event-queue exhaustion. Returns events dispatched.
    pub fn run_to_completion<M: Model<Ev = Ev>>(&mut self, model: &mut M) -> u64 {
        self.run_until(model, SimTime(u64::MAX))
    }

    /// Dispatch exactly one event (the earliest pending), advancing the
    /// clock to it. Returns the time it fired, or `None` with the queue
    /// empty. This is the schedule-exploration hook: an external driver
    /// can interleave its own observations (or fault injections) between
    /// individual event dispatches instead of handing the engine a whole
    /// horizon at once.
    pub fn step<M: Model<Ev = Ev>>(&mut self, model: &mut M) -> Option<SimTime> {
        let (time, ev) = self.pop()?;
        debug_assert!(time >= self.now, "event heap delivered out of order");
        self.now = time;
        self.processed += 1;
        model.handle(time, ev, self);
        Some(time)
    }

    /// Time of the earliest pending event, without dispatching it.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that records the order in which events arrive.
    struct Recorder {
        seen: Vec<(u64, u32)>, // (time µs, tag)
    }

    enum Ev {
        Tag(u32),
        Chain(u32, u64), // tag, respawn delay µs
    }

    impl Model for Recorder {
        type Ev = Ev;
        fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
            match ev {
                Ev::Tag(t) => self.seen.push((now.as_micros(), t)),
                Ev::Chain(t, delay) => {
                    self.seen.push((now.as_micros(), t));
                    if t > 0 {
                        sched.after(SimTime::from_micros(delay), Ev::Chain(t - 1, delay));
                    }
                }
            }
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut m = Recorder { seen: vec![] };
        let mut s = Scheduler::new();
        s.at(SimTime::from_micros(30), Ev::Tag(3));
        s.at(SimTime::from_micros(10), Ev::Tag(1));
        s.at(SimTime::from_micros(20), Ev::Tag(2));
        s.run_to_completion(&mut m);
        assert_eq!(m.seen, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut m = Recorder { seen: vec![] };
        let mut s = Scheduler::new();
        s.at(SimTime::from_micros(5), Ev::Tag(1));
        s.at(SimTime::from_micros(5), Ev::Tag(2));
        s.at(SimTime::from_micros(5), Ev::Tag(3));
        s.run_to_completion(&mut m);
        assert_eq!(m.seen, vec![(5, 1), (5, 2), (5, 3)]);
    }

    #[test]
    fn chained_scheduling_advances_clock() {
        let mut m = Recorder { seen: vec![] };
        let mut s = Scheduler::new();
        s.at(SimTime::ZERO, Ev::Chain(3, 100));
        let n = s.run_to_completion(&mut m);
        assert_eq!(n, 4);
        assert_eq!(m.seen, vec![(0, 3), (100, 2), (200, 1), (300, 0)]);
        assert_eq!(s.processed(), 4);
    }

    #[test]
    fn run_until_stops_at_horizon_inclusive() {
        let mut m = Recorder { seen: vec![] };
        let mut s = Scheduler::new();
        s.at(SimTime::from_micros(10), Ev::Tag(1));
        s.at(SimTime::from_micros(20), Ev::Tag(2));
        s.at(SimTime::from_micros(21), Ev::Tag(3));
        let n = s.run_until(&mut m, SimTime::from_micros(20));
        assert_eq!(n, 2);
        assert_eq!(s.pending(), 1);
        assert_eq!(s.now(), SimTime::from_micros(20));
        // Resuming picks up the rest.
        s.run_to_completion(&mut m);
        assert_eq!(m.seen.len(), 3);
    }

    #[test]
    fn single_step_dispatches_one_event_and_matches_batch_run() {
        let mut batch = Recorder { seen: vec![] };
        let mut sb = Scheduler::new();
        sb.at(SimTime::ZERO, Ev::Chain(3, 100));
        sb.run_to_completion(&mut batch);

        let mut stepped = Recorder { seen: vec![] };
        let mut ss = Scheduler::new();
        ss.at(SimTime::ZERO, Ev::Chain(3, 100));
        let mut fired = Vec::new();
        while let Some(t) = ss.step(&mut stepped) {
            fired.push(t.as_micros());
        }
        assert_eq!(stepped.seen, batch.seen, "stepping must not reorder");
        assert_eq!(fired, vec![0, 100, 200, 300]);
        assert_eq!(ss.next_event_time(), None);
        assert!(ss.step(&mut stepped).is_none());
    }

    #[test]
    fn next_event_time_peeks_without_dispatch() {
        let mut s: Scheduler<Ev> = Scheduler::new();
        s.at(SimTime::from_micros(7), Ev::Tag(1));
        assert_eq!(s.next_event_time(), Some(SimTime::from_micros(7)));
        assert_eq!(s.pending(), 1);
        assert_eq!(s.processed(), 0);
    }

    #[test]
    fn clock_is_monotone_even_with_empty_heap() {
        let mut m = Recorder { seen: vec![] };
        let mut s: Scheduler<Ev> = Scheduler::new();
        s.run_until(&mut m, SimTime::from_secs(5));
        assert_eq!(s.now(), SimTime::from_secs(5));
    }
}
