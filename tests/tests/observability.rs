//! Observability harness: per-connection span trees, per-stage latency
//! exposition, and the no-op fast path.
//!
//! The span tests are the executable specification of the O10 trace
//! model: a single COPS-HTTP exchange must produce an exactly-ordered
//! span sequence, a COPS-FTP session a structurally complete one, and a
//! seeded fault plan must never leave an orphaned span tree (every
//! accepted connection's spans start at `Accept` and end at `Close`,
//! reset mid-write included). The exposition tests reconcile the
//! `/server-status` route and the FTP `STAT` report against the exact
//! number of requests driven. The final test pins the O11=No contract:
//! a thousand requests leave zero histogram samples and zero trace
//! detail strings behind.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::BytesMut;
use nserver_core::fault::{FaultPlan, FaultyListener};
use nserver_core::metrics::MetricsRegistry;
use nserver_core::options::{Mode, ServerOptions};
use nserver_core::pipeline::{Action, Codec, ConnCtx, ProtocolError, Service};
use nserver_core::profiling::ServerStats;
use nserver_core::server::ServerBuilder;
use nserver_core::trace::SpanEvent;
use nserver_core::transport::{mem, ReadOutcome, StreamIo};
use nserver_ftp::{cops_ftp_options, FtpCodec, FtpService, UserRegistry, Vfs};
use nserver_http::{
    cops_http_options, text_page, HttpCodec, MemStore, RoutedService, StaticFileService, Status,
};

fn http_request(path: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\nHost: o11y\r\nConnection: close\r\n\r\n").into_bytes()
}

fn write_all(conn: &mut mem::MemStream, data: &[u8], deadline: Instant) -> bool {
    let mut sent = 0;
    while sent < data.len() {
        if Instant::now() > deadline {
            return false;
        }
        match conn.try_write(&data[sent..]) {
            Ok(0) => std::thread::sleep(Duration::from_micros(200)),
            Ok(n) => sent += n,
            Err(_) => return false,
        }
    }
    true
}

/// Read until the connection closes (all exchanges here send
/// `Connection: close`); `None` if the server dropped us mid-stream
/// before any bytes (fault tests tolerate that).
fn read_to_close(conn: &mut mem::MemStream, deadline: Instant) -> Option<Vec<u8>> {
    let mut acc = Vec::new();
    let mut buf = [0u8; 8192];
    loop {
        if Instant::now() > deadline {
            return None;
        }
        match conn.try_read(&mut buf) {
            Err(_) | Ok(ReadOutcome::Closed) => return Some(acc),
            Ok(ReadOutcome::WouldBlock) => std::thread::sleep(Duration::from_micros(200)),
            Ok(ReadOutcome::Data(n)) => acc.extend_from_slice(&buf[..n]),
        }
    }
}

fn wait_for_drain(open: impl Fn() -> usize, patience: Duration) -> bool {
    let deadline = Instant::now() + patience;
    while Instant::now() < deadline {
        if open() == 0 {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

/// One full HTTP exchange (request out, response read to close).
fn closed_exchange(conn: &mut mem::MemStream, path: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(5);
    assert!(write_all(conn, &http_request(path), deadline), "write");
    let bytes = read_to_close(conn, deadline).expect("response before deadline");
    String::from_utf8_lossy(&bytes).into_owned()
}

// ---------------------------------------------------------------------
// Span trees
// ---------------------------------------------------------------------

/// One COPS-HTTP request over the mem transport produces the exact,
/// fully ordered span sequence of the request path. With no file cache
/// the static service defers every read through the Proactor, so the
/// asynchronous completion spans appear too.
#[test]
fn http_exchange_produces_exact_span_sequence() {
    let mut store = MemStore::new();
    store.insert("/a.txt", b"hello observability".to_vec());
    let opts = ServerOptions {
        mode: Mode::Debug,
        profiling: true,
        ..cops_http_options()
    };
    let (listener, connector) = mem::listener("o11y-http-spans");
    let server = ServerBuilder::new(opts, HttpCodec::new(), StaticFileService::new(store, None))
        .unwrap()
        .serve(listener);

    let mut conn = connector.connect();
    let response = closed_exchange(&mut conn, "/a.txt");
    assert!(response.starts_with("HTTP/1.1 200"), "got: {response}");
    assert!(
        wait_for_drain(|| server.open_connections(), Duration::from_secs(5)),
        "connection leaked"
    );

    assert_eq!(
        server.tracer().spans_for(1),
        vec![
            SpanEvent::Accept,
            SpanEvent::HeaderRead,
            SpanEvent::Decode { seq: 0 },
            SpanEvent::Handle { seq: 0 },
            SpanEvent::Defer { seq: 0 },
            SpanEvent::Complete { seq: 0 },
            SpanEvent::Encode { seq: 0 },
            SpanEvent::WriteDrain,
            SpanEvent::Close,
        ]
    );
}

/// A COPS-FTP session's span tree is structurally complete. The exact
/// interleaving is not deterministic — the greeting is written before
/// any read, so a `WriteDrain` may precede `HeaderRead`, and replies
/// can drain in the same reactor pass as the next command's read — but
/// the causal structure must hold: the tree is rooted at `Accept`,
/// terminated by `Close`, and every request seq's Decode → Handle →
/// Encode spans appear in order.
#[test]
fn ftp_session_span_tree_is_structurally_complete() {
    let opts = ServerOptions {
        mode: Mode::Debug,
        profiling: true,
        ..cops_ftp_options()
    };
    let vfs = Arc::new(Vfs::new());
    let users = Arc::new(UserRegistry::new().with_anonymous());
    let (listener, connector) = mem::listener("o11y-ftp-spans");
    let server = ServerBuilder::new(opts, FtpCodec, FtpService::new(vfs, users))
        .unwrap()
        .serve(listener);

    let mut conn = connector.connect();
    let deadline = Instant::now() + Duration::from_secs(5);
    read_line(&mut conn, deadline); // greeting
    for cmd in ["USER anonymous", "PASS guest", "PWD", "QUIT"] {
        assert!(write_all(
            &mut conn,
            format!("{cmd}\r\n").as_bytes(),
            deadline
        ));
        read_line(&mut conn, deadline);
    }
    assert!(
        wait_for_drain(|| server.open_connections(), Duration::from_secs(5)),
        "connection leaked"
    );

    let spans = server.tracer().spans_for(1);
    assert_eq!(spans.first(), Some(&SpanEvent::Accept), "{spans:?}");
    assert_eq!(spans.last(), Some(&SpanEvent::Close), "{spans:?}");
    let count = |e: &SpanEvent| spans.iter().filter(|s| *s == e).count();
    assert_eq!(count(&SpanEvent::HeaderRead), 1, "{spans:?}");
    assert!(count(&SpanEvent::WriteDrain) >= 1, "{spans:?}");
    // Four commands → request seqs 0..=3, each with an in-order
    // Decode < Handle < Encode triple, and seqs opening in order.
    let pos = |e: SpanEvent| {
        spans
            .iter()
            .position(|s| *s == e)
            .unwrap_or_else(|| panic!("missing {e:?} in {spans:?}"))
    };
    let mut last_decode = 0;
    for seq in 0..4u64 {
        let d = pos(SpanEvent::Decode { seq });
        let h = pos(SpanEvent::Handle { seq });
        let e = pos(SpanEvent::Encode { seq });
        assert!(d < h && h < e, "seq {seq} out of order: {spans:?}");
        assert!(d >= last_decode, "seqs opened out of order: {spans:?}");
        last_decode = d;
    }
}

/// Degraded orderings: under a fault plan that resets every connection
/// mid-stream, no span tree is left orphaned — every accepted
/// connection's spans still begin with `Accept` and end with `Close`,
/// whether the exchange completed or was torn down mid-write.
#[test]
fn faulted_connections_never_orphan_their_span_trees() {
    let mut store = MemStore::new();
    store.insert("/a.txt", vec![b'x'; 300]);
    let opts = ServerOptions {
        mode: Mode::Debug,
        profiling: true,
        ..cops_http_options()
    };
    let plan = FaultPlan {
        reset_per_mille: 1000, // every connection draws Reset{after 1..=256 bytes}
        ..FaultPlan::new(7)
    };
    let (listener, connector) = mem::listener("o11y-fault-spans");
    let server = ServerBuilder::new(opts, HttpCodec::new(), StaticFileService::new(store, None))
        .unwrap()
        .serve(FaultyListener::new(listener, plan));

    const CONNS: u64 = 6;
    for _ in 0..CONNS {
        let mut conn = connector.connect();
        let deadline = Instant::now() + Duration::from_secs(3);
        // Tolerant drive: resets drop the connection at an arbitrary
        // point; all we need is for the server to have seen it.
        if write_all(&mut conn, &http_request("/a.txt"), deadline) {
            let _ = read_to_close(&mut conn, deadline);
        }
    }
    assert!(
        wait_for_drain(|| server.open_connections(), Duration::from_secs(5)),
        "faulted connections leaked"
    );

    for conn_id in 1..=CONNS {
        let spans = server.tracer().spans_for(conn_id);
        assert!(!spans.is_empty(), "conn {conn_id}: no spans at all");
        assert_eq!(
            spans.first(),
            Some(&SpanEvent::Accept),
            "conn {conn_id}: {spans:?}"
        );
        assert_eq!(
            spans.last(),
            Some(&SpanEvent::Close),
            "conn {conn_id}: tree not closed: {spans:?}"
        );
        let accepts = spans.iter().filter(|s| **s == SpanEvent::Accept).count();
        let closes = spans.iter().filter(|s| **s == SpanEvent::Close).count();
        assert_eq!((accepts, closes), (1, 1), "conn {conn_id}: {spans:?}");
    }
}

// ---------------------------------------------------------------------
// Exposition
// ---------------------------------------------------------------------

/// `/server-status` reconciles with the requests actually driven: after
/// five page requests, the scrape itself is the sixth decoded request,
/// whose handle stage is still open while the page renders.
#[test]
fn server_status_scrape_reconciles_with_request_counts() {
    let mut store = MemStore::new();
    store.insert("/index.html", b"<html>home</html>".to_vec());
    let stats = ServerStats::new_shared();
    let metrics = MetricsRegistry::enabled();
    let service = RoutedService::new(StaticFileService::new(store, None))
        .route("/page", text_page(Status::Ok, |_| "dynamic page".into()))
        .server_status(stats.clone(), metrics.clone());
    let opts = ServerOptions {
        mode: Mode::Debug,
        profiling: true,
        ..cops_http_options()
    };
    let (listener, connector) = mem::listener("o11y-http-status");
    let server = ServerBuilder::new(opts, HttpCodec::new(), service)
        .unwrap()
        .stats(stats)
        .metrics(metrics)
        .serve(listener);

    for _ in 0..5 {
        let mut conn = connector.connect();
        let response = closed_exchange(&mut conn, "/page");
        assert!(response.starts_with("HTTP/1.1 200"), "got: {response}");
    }
    let mut conn = connector.connect();
    let scrape = closed_exchange(&mut conn, "/server-status");
    assert!(scrape.starts_with("HTTP/1.1 200"), "got: {scrape}");

    // Counter reconciliation at render time: six connections accepted
    // (five pages + the scrape), six requests past accept→header and
    // decode, but only five past handle — the scrape's own handle stage
    // closes after the page body is produced.
    for needle in [
        "nserver_connections_accepted 6",
        "nserver_stage_latency_us_count{stage=\"accept_to_header\"} 6",
        "nserver_stage_latency_us_count{stage=\"decode\"} 6",
        "nserver_stage_latency_us_count{stage=\"handle\"} 5",
        "nserver_stage_latency_us_count{stage=\"encode\"} 5",
        "nserver_stage_latency_quantile_us{stage=\"handle\",quantile=\"0.5\"}",
        "nserver_stage_latency_quantile_us{stage=\"handle\",quantile=\"0.99\"}",
        "nserver_queue_depth",
    ] {
        assert!(scrape.contains(needle), "missing {needle:?} in:\n{scrape}");
    }
    assert!(
        wait_for_drain(|| server.open_connections(), Duration::from_secs(5)),
        "connections leaked"
    );
}

fn read_line(conn: &mut mem::MemStream, deadline: Instant) -> String {
    let mut acc = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        if acc.windows(2).any(|w| w == b"\r\n") {
            return String::from_utf8_lossy(&acc).into_owned();
        }
        assert!(Instant::now() <= deadline, "ftp read timed out");
        match conn.try_read(&mut buf) {
            Err(e) => panic!("ftp read failed: {e}"),
            Ok(ReadOutcome::Closed) => panic!("ftp connection dropped"),
            Ok(ReadOutcome::WouldBlock) => std::thread::sleep(Duration::from_micros(200)),
            Ok(ReadOutcome::Data(n)) => acc.extend_from_slice(&buf[..n]),
        }
    }
}

fn read_until(conn: &mut mem::MemStream, needle: &str, deadline: Instant) -> String {
    let mut acc = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        if String::from_utf8_lossy(&acc).contains(needle) {
            return String::from_utf8_lossy(&acc).into_owned();
        }
        assert!(
            Instant::now() <= deadline,
            "ftp read timed out waiting for {needle:?}"
        );
        match conn.try_read(&mut buf) {
            Err(e) => panic!("ftp read failed: {e}"),
            Ok(ReadOutcome::Closed) => panic!("ftp connection dropped"),
            Ok(ReadOutcome::WouldBlock) => std::thread::sleep(Duration::from_micros(200)),
            Ok(ReadOutcome::Data(n)) => acc.extend_from_slice(&buf[..n]),
        }
    }
}

/// The FTP `STAT` report carries the same live counters and per-stage
/// quantiles over the control connection, and reconciles with the
/// session's own command count: at render time USER, PASS, PWD and
/// STAT itself have been decoded (4) but only the first three handled.
#[test]
fn ftp_stat_reconciles_with_decoded_commands() {
    let stats = ServerStats::new_shared();
    let metrics = MetricsRegistry::enabled();
    let vfs = Arc::new(Vfs::new());
    let users = Arc::new(UserRegistry::new().with_anonymous());
    let service = FtpService::new(vfs, users);
    service.attach_stats(stats.clone(), metrics.clone());
    let opts = ServerOptions {
        mode: Mode::Debug,
        profiling: true,
        ..cops_ftp_options()
    };
    let (listener, connector) = mem::listener("o11y-ftp-stat");
    let server = ServerBuilder::new(opts, FtpCodec, service)
        .unwrap()
        .stats(stats)
        .metrics(metrics)
        .serve(listener);

    let mut conn = connector.connect();
    let deadline = Instant::now() + Duration::from_secs(5);
    read_line(&mut conn, deadline); // greeting
    for cmd in ["USER anonymous", "PASS guest", "PWD"] {
        assert!(write_all(
            &mut conn,
            format!("{cmd}\r\n").as_bytes(),
            deadline
        ));
        read_line(&mut conn, deadline);
    }
    assert!(write_all(&mut conn, b"STAT\r\n", deadline));
    let report = read_until(&mut conn, "211 End", deadline);

    assert!(report.starts_with("211-"), "got: {report}");
    for needle in [
        "Live sessions: 1",
        "connections accepted: 1",
        "decode: count=4 p50=",
        "handle: count=3 p50=",
        "p99=",
    ] {
        assert!(report.contains(needle), "missing {needle:?} in:\n{report}");
    }

    assert!(write_all(&mut conn, b"QUIT\r\n", deadline));
    read_line(&mut conn, deadline);
    assert!(
        wait_for_drain(|| server.open_connections(), Duration::from_secs(5)),
        "connection leaked"
    );
}

// ---------------------------------------------------------------------
// No-op fast path (O10 = Production, O11 = No)
// ---------------------------------------------------------------------

struct LineCodec;

impl Codec for LineCodec {
    type Request = String;
    type Response = String;

    fn decode(&self, buf: &mut BytesMut) -> Result<Option<String>, ProtocolError> {
        match buf.iter().position(|&b| b == b'\n') {
            Some(i) => {
                let line = buf.split_to(i + 1);
                Ok(Some(String::from_utf8_lossy(&line[..i]).into_owned()))
            }
            None => Ok(None),
        }
    }

    fn encode(&self, r: &String, out: &mut BytesMut) -> Result<(), ProtocolError> {
        out.extend_from_slice(r.as_bytes());
        out.extend_from_slice(b"\n");
        Ok(())
    }
}

struct Echo;

impl Service<LineCodec> for Echo {
    fn handle(&self, _ctx: &ConnCtx, req: String) -> Action<String> {
        Action::Reply(format!("echo {req}"))
    }
}

/// With observability off (O10 = Production, O11 = No), a thousand
/// requests leave no trace behind: zero histogram samples recorded and
/// zero trace detail strings allocated. This is the regression guard
/// for the no-op fast path — instrumentation must cost nothing when
/// both options are off.
#[test]
fn disabled_observability_records_nothing_across_a_thousand_requests() {
    let opts = ServerOptions {
        mode: Mode::Production,
        profiling: false,
        ..ServerOptions::default()
    };
    let (listener, connector) = mem::listener("o11y-noop");
    let server = ServerBuilder::new(opts, LineCodec, Echo)
        .unwrap()
        .serve(listener);

    let mut conn = connector.connect();
    let deadline = Instant::now() + Duration::from_secs(30);
    const TOTAL: usize = 1_000;
    const BATCH: usize = 100;
    let mut received = 0usize;
    for batch in 0..TOTAL / BATCH {
        let mut out = String::new();
        for i in 0..BATCH {
            out.push_str(&format!("ping {}\n", batch * BATCH + i));
        }
        assert!(write_all(&mut conn, out.as_bytes(), deadline), "write");
        // Drain the batch's echoes before pipelining the next one.
        let mut acc = Vec::new();
        let mut buf = [0u8; 8192];
        while acc.iter().filter(|&&b| b == b'\n').count() < BATCH {
            assert!(Instant::now() <= deadline, "echo batch timed out");
            match conn.try_read(&mut buf) {
                Err(e) => panic!("read failed: {e}"),
                Ok(ReadOutcome::Closed) => panic!("server closed mid-run"),
                Ok(ReadOutcome::WouldBlock) => std::thread::sleep(Duration::from_micros(100)),
                Ok(ReadOutcome::Data(n)) => acc.extend_from_slice(&buf[..n]),
            }
        }
        received += acc.iter().filter(|&&b| b == b'\n').count();
    }
    assert_eq!(received, TOTAL, "every request echoed");
    drop(conn);

    assert_eq!(
        server.metrics().samples_recorded(),
        0,
        "O11=No must record zero histogram samples"
    );
    assert_eq!(server.latency().total_samples(), 0);
    assert_eq!(
        server.tracer().detail_strings(),
        0,
        "O10=Production must allocate zero trace detail strings"
    );
}
