//! Conformance trace tap: transport wrappers that record every observable
//! byte-level event of each accepted connection as an ordered trace.
//!
//! The tap sits **outside** the fault layer (`Tap ∘ Faulty ∘ Mem`), so what
//! it records is exactly what the framework observed: reads are post-fault
//! (corrupted / short / suppressed bytes as the decoder saw them), writes
//! are the bytes the transport actually accepted, and injected resets show
//! up as the I/O errors the reactor had to handle. The conformance crate
//! replays these traces against executable protocol models; anything the
//! model rejects is either a framework bug or a model bug — both worth
//! knowing about.
//!
//! The wrappers mirror [`crate::fault`]'s delegation pattern: a
//! [`TapListener`] stamps each accepted stream with a fresh per-connection
//! trace, [`TapStream`] records the I/O events, and [`TapPoller`] is a pure
//! pass-through.

use std::io;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::fault::FaultPlan;
use crate::transport::{Interest, Listener, PollEvent, Poller, ReadOutcome, StreamIo, Waker};

/// One observable event on a tapped connection, in occurrence order.
///
/// This is the trace alphabet the conformance models consume. `Read` and
/// `Wrote` carry the actual bytes; error events carry the error text so a
/// model can distinguish injected resets from other failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TapEvent {
    /// Bytes the server read from the stream (post-fault: what the
    /// decoder actually consumed).
    Read(Vec<u8>),
    /// The peer closed its write side (`ReadOutcome::Closed`): half-close
    /// observed by the server.
    ReadEof,
    /// A read attempt failed hard (e.g. injected reset).
    ReadError(String),
    /// Bytes the transport accepted from the server ("on the wire").
    Wrote(Vec<u8>),
    /// A write attempt failed hard. A conforming server stops writing once
    /// a connection's sink is dead, so at most one of these may appear —
    /// any `Wrote`/`WriteError` *after* the first hard error is a
    /// model violation (a reply written to a reset peer).
    WriteError(String),
    /// The server shut the stream down.
    Shutdown,
}

/// The ordered observable trace of one accepted connection.
#[derive(Debug, Clone)]
pub struct ConnTrace {
    /// 1-based accept index (aligned with [`FaultPlan::profile_for`]).
    pub accept_index: u64,
    /// Peer label reported by the transport.
    pub peer: String,
    /// Debug rendering of the injected fault profile, `"Clean"` when the
    /// tap wraps an un-faulted transport.
    pub profile: String,
    /// The events, in occurrence order.
    pub events: Vec<TapEvent>,
}

impl ConnTrace {
    /// All bytes the server read, concatenated in order (the decoder's
    /// exact input stream).
    pub fn inbound(&self) -> Vec<u8> {
        let mut v = Vec::new();
        for e in &self.events {
            if let TapEvent::Read(b) = e {
                v.extend_from_slice(b);
            }
        }
        v
    }

    /// All bytes the server put on the wire, concatenated in order (the
    /// peer's exact view of the response stream).
    pub fn outbound(&self) -> Vec<u8> {
        let mut v = Vec::new();
        for e in &self.events {
            if let TapEvent::Wrote(b) = e {
                v.extend_from_slice(b);
            }
        }
        v
    }

    /// True if any read or write attempt failed hard (injected reset or
    /// similar) at some point in the trace.
    pub fn saw_io_error(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, TapEvent::ReadError(_) | TapEvent::WriteError(_)))
    }

    /// True if the peer's write side was seen closed (half-close).
    pub fn saw_eof(&self) -> bool {
        self.events.iter().any(|e| matches!(e, TapEvent::ReadEof))
    }
}

/// Shared, clonable log of every connection trace a [`TapListener`]
/// produced, plus accept-time failures.
#[derive(Clone, Default)]
pub struct TraceLog {
    conns: Arc<Mutex<Vec<Arc<Mutex<ConnTrace>>>>>,
    accept_failures: Arc<Mutex<Vec<u64>>>,
}

impl TraceLog {
    /// Fresh empty log.
    pub fn new() -> Self {
        Self::default()
    }

    fn open(&self, accept_index: u64, peer: String, profile: String) -> Arc<Mutex<ConnTrace>> {
        let trace = Arc::new(Mutex::new(ConnTrace {
            accept_index,
            peer,
            profile,
            events: Vec::new(),
        }));
        self.conns.lock().push(Arc::clone(&trace));
        trace
    }

    fn record_accept_failure(&self, accept_index: u64) {
        self.accept_failures.lock().push(accept_index);
    }

    /// Number of connections traced so far.
    pub fn len(&self) -> usize {
        self.conns.lock().len()
    }

    /// True when no connection has been traced.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Accept indices that failed at accept time (injected accept faults).
    pub fn accept_failures(&self) -> Vec<u64> {
        self.accept_failures.lock().clone()
    }

    /// Deep-copy every per-connection trace in accept order. Traces of
    /// still-live connections reflect events so far.
    pub fn snapshot(&self) -> Vec<ConnTrace> {
        self.conns.lock().iter().map(|t| t.lock().clone()).collect()
    }
}

/// [`StreamIo`] wrapper recording each I/O event into the connection trace.
pub struct TapStream<S> {
    inner: S,
    trace: Arc<Mutex<ConnTrace>>,
    shutdown_logged: bool,
}

impl<S: StreamIo> StreamIo for TapStream<S> {
    fn try_read(&mut self, buf: &mut [u8]) -> io::Result<ReadOutcome> {
        match self.inner.try_read(buf) {
            Ok(ReadOutcome::Data(n)) => {
                self.trace
                    .lock()
                    .events
                    .push(TapEvent::Read(buf[..n].to_vec()));
                Ok(ReadOutcome::Data(n))
            }
            Ok(ReadOutcome::WouldBlock) => Ok(ReadOutcome::WouldBlock),
            Ok(ReadOutcome::Closed) => {
                let mut t = self.trace.lock();
                // Idempotent observation: the reactor may poll a
                // half-closed stream repeatedly; one EOF event suffices.
                if !t.events.iter().any(|e| matches!(e, TapEvent::ReadEof)) {
                    t.events.push(TapEvent::ReadEof);
                }
                Ok(ReadOutcome::Closed)
            }
            Err(e) => {
                self.trace
                    .lock()
                    .events
                    .push(TapEvent::ReadError(e.to_string()));
                Err(e)
            }
        }
    }

    fn try_write(&mut self, data: &[u8]) -> io::Result<usize> {
        match self.inner.try_write(data) {
            Ok(0) => Ok(0),
            Ok(n) => {
                self.trace
                    .lock()
                    .events
                    .push(TapEvent::Wrote(data[..n].to_vec()));
                Ok(n)
            }
            Err(e) => {
                self.trace
                    .lock()
                    .events
                    .push(TapEvent::WriteError(e.to_string()));
                Err(e)
            }
        }
    }

    fn peer_label(&self) -> String {
        self.inner.peer_label()
    }

    fn shutdown(&mut self) {
        if !self.shutdown_logged {
            self.shutdown_logged = true;
            self.trace.lock().events.push(TapEvent::Shutdown);
        }
        self.inner.shutdown();
    }
}

/// [`Poller`] wrapper: pure delegation to the inner poller.
pub struct TapPoller<P> {
    inner: P,
}

impl<P: Poller> Poller for TapPoller<P> {
    type Stream = TapStream<P::Stream>;

    fn register(
        &mut self,
        token: u64,
        stream: &Self::Stream,
        interest: Interest,
    ) -> io::Result<()> {
        self.inner.register(token, &stream.inner, interest)
    }

    fn reregister(
        &mut self,
        token: u64,
        stream: &Self::Stream,
        interest: Interest,
    ) -> io::Result<()> {
        self.inner.reregister(token, &stream.inner, interest)
    }

    fn deregister(&mut self, token: u64, stream: &Self::Stream) -> io::Result<()> {
        self.inner.deregister(token, &stream.inner)
    }

    fn wait(&mut self, events: &mut Vec<PollEvent>, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.wait(events, timeout)
    }

    fn waker(&self) -> Waker {
        self.inner.waker()
    }
}

/// [`Listener`] wrapper opening a fresh [`ConnTrace`] per accepted stream.
///
/// When the wrapped listener is a [`crate::fault::FaultyListener`], pass
/// the same [`FaultPlan`] via [`TapListener::with_plan`] so each trace is
/// stamped with the profile the fault layer will apply; the tap counts
/// accepts (including injected accept failures, which consume an accept
/// index inside the fault layer) to stay aligned with
/// [`FaultPlan::profile_for`].
pub struct TapListener<L> {
    inner: L,
    log: TraceLog,
    plan: Option<FaultPlan>,
    accepted: u64,
}

impl<L: Listener> TapListener<L> {
    /// Tap `inner`, recording traces into `log`.
    pub fn new(inner: L, log: TraceLog) -> Self {
        Self {
            inner,
            log,
            plan: None,
            accepted: 0,
        }
    }

    /// Stamp each trace with the fault profile `plan` assigns to its
    /// accept index.
    pub fn with_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = Some(plan);
        self
    }
}

impl<L: Listener> Listener for TapListener<L> {
    type Stream = TapStream<L::Stream>;
    type Poller = TapPoller<L::Poller>;

    fn try_accept(&mut self) -> io::Result<Option<Self::Stream>> {
        match self.inner.try_accept() {
            Ok(Some(stream)) => {
                self.accepted += 1;
                let profile = match &self.plan {
                    Some(p) => format!("{:?}", p.profile_for(self.accepted)),
                    None => "Clean".to_string(),
                };
                let trace = self.log.open(self.accepted, stream.peer_label(), profile);
                Ok(Some(TapStream {
                    inner: stream,
                    trace,
                    shutdown_logged: false,
                }))
            }
            Ok(None) => Ok(None),
            Err(e) => {
                // An injected accept failure consumed an accept index in
                // the fault layer; mirror it to stay aligned.
                self.accepted += 1;
                self.log.record_accept_failure(self.accepted);
                Err(e)
            }
        }
    }

    fn local_label(&self) -> String {
        self.inner.local_label()
    }

    fn new_poller() -> io::Result<Self::Poller> {
        Ok(TapPoller {
            inner: L::new_poller()?,
        })
    }

    fn register_listener(&self, poller: &mut Self::Poller) -> io::Result<()> {
        self.inner.register_listener(&mut poller.inner)
    }

    fn deregister_listener(&self, poller: &mut Self::Poller) -> io::Result<()> {
        self.inner.deregister_listener(&mut poller.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultyListener};
    use crate::transport::mem;

    #[test]
    fn tap_records_reads_writes_and_shutdown_in_order() {
        let (listener, connector) = mem::listener("tap");
        let log = TraceLog::new();
        let mut tapped = TapListener::new(listener, log.clone());
        let mut client = connector.connect();

        let mut server_side = tapped.try_accept().unwrap().unwrap();
        client.try_write(b"hello").unwrap();
        let mut buf = [0u8; 16];
        assert!(matches!(
            server_side.try_read(&mut buf).unwrap(),
            ReadOutcome::Data(5)
        ));
        server_side.try_write(b"world!").unwrap();
        server_side.shutdown();
        server_side.shutdown(); // idempotent: one Shutdown event

        let traces = log.snapshot();
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.accept_index, 1);
        assert_eq!(t.profile, "Clean");
        assert_eq!(
            t.events,
            vec![
                TapEvent::Read(b"hello".to_vec()),
                TapEvent::Wrote(b"world!".to_vec()),
                TapEvent::Shutdown,
            ]
        );
        assert_eq!(t.inbound(), b"hello");
        assert_eq!(t.outbound(), b"world!");
        assert!(!t.saw_io_error());
    }

    #[test]
    fn tap_over_faults_records_post_fault_bytes_and_errors() {
        // Corrupt{every: 2} flips every 2nd inbound byte; the tap must see
        // the corrupted stream (what the decoder saw), not the original.
        let plan = FaultPlan {
            corrupt_per_mille: 1000,
            ..FaultPlan::new(1)
        };
        // Find a seed/index where profile 1 actually corrupts.
        assert!(matches!(
            plan.profile_for(1),
            crate::fault::FaultProfile::Corrupt { .. }
        ));
        let (listener, connector) = mem::listener("tap-fault");
        let log = TraceLog::new();
        let mut tapped =
            TapListener::new(FaultyListener::new(listener, plan), log.clone()).with_plan(plan);
        let mut client = connector.connect();
        let mut server_side = tapped.try_accept().unwrap().unwrap();
        client.try_write(b"aaaa").unwrap();
        let mut buf = [0u8; 16];
        let n = match server_side.try_read(&mut buf).unwrap() {
            ReadOutcome::Data(n) => n,
            other => panic!("{other:?}"),
        };
        let traces = log.snapshot();
        assert_eq!(
            traces[0].inbound(),
            buf[..n].to_vec(),
            "tap sees decoder bytes"
        );
        assert_ne!(traces[0].inbound(), b"aaaa".to_vec(), "corruption visible");
        assert!(
            traces[0].profile.contains("Corrupt"),
            "{}",
            traces[0].profile
        );
    }

    #[test]
    fn half_close_is_recorded_once() {
        let (listener, connector) = mem::listener("tap-eof");
        let log = TraceLog::new();
        let mut tapped = TapListener::new(listener, log.clone());
        let mut client = connector.connect();
        let mut server_side = tapped.try_accept().unwrap().unwrap();
        client.shutdown();
        let mut buf = [0u8; 4];
        assert!(matches!(
            server_side.try_read(&mut buf).unwrap(),
            ReadOutcome::Closed
        ));
        assert!(matches!(
            server_side.try_read(&mut buf).unwrap(),
            ReadOutcome::Closed
        ));
        let t = &log.snapshot()[0];
        assert_eq!(t.events, vec![TapEvent::ReadEof]);
        assert!(t.saw_eof());
    }
}
