//! The executable FTP model: the COPS-FTP control-channel state machine
//! as a nondeterministic acceptor over reply blocks, extended to the
//! data plane.
//!
//! Unlike HTTP, the FTP reply *bytes* are not a pure function of the
//! inbound stream — `STAT` bodies embed live server counters — so the
//! control channel is accepted at the `(reply code, multiline?)` level:
//! the decoded command stream determines the exact sequence of reply
//! codes, and a conforming trace must realize a prefix of it (prefix
//! closure again covers faults cutting the stream anywhere).
//!
//! The model keeps its own login FSM, working directory and a *replica*
//! VFS seeded with the fixture content. Replaying the connection's own
//! `MKD`/`STOR` mutations against the replica keeps it exact as long as
//! schedules keep mutated paths disjoint across connections — which the
//! generator guarantees.
//!
//! `PASV` transfers are modeled as [`StepResult::Transfer`] slots with
//! three admissible outcomes, decided by the observed reply block:
//!
//! * **success** (`150` + `226`): the joined data-connection trace must
//!   carry the byte-exact payload (`LIST`/`RETR` downloads against the
//!   replica VFS; `STOR` uploads are committed back into the replica so
//!   a later `RETR` of the same path checks write-back visibility), and
//!   the data socket must have closed *before* the server wrote the
//!   `150 …\r\n226 …` completion — checked via the trace log's global
//!   event sequence.
//! * **data failure** (`425`): admissible only on tolerant connections
//!   (faulty profile, early close, or a planned mid-transfer abort); a
//!   partially-transferred download must still be a byte prefix of the
//!   expected payload.
//! * **static failure** (`550`): the replica predicts it from the path
//!   alone (missing file / bad STOR target), with no data socket
//!   accepted for downloads and a drained-then-rejected upload for
//!   `STOR`.

use std::sync::Arc;

use nserver_core::tap::ConnTrace;
use nserver_ftp::commands::Command;
use nserver_ftp::legacy::users::UserRegistry;
use nserver_ftp::legacy::vfs::{normalize, Vfs};
use nserver_ftp::observe::{extract_commands, listing_text, split_replies, ReplyStreamEnd};
use nserver_ftp::FtpRequest;

use crate::Violation;

/// The fixture served in every FTP conformance run.
pub struct FtpFixture;

impl FtpFixture {
    fn populate(vfs: &Vfs) {
        vfs.mkdir("/pub");
        vfs.write("/pub/hello.txt", b"hello ftp".to_vec());
    }

    /// The live server's filesystem.
    pub fn vfs() -> Arc<Vfs> {
        let vfs = Arc::new(Vfs::new());
        Self::populate(&vfs);
        vfs
    }

    /// The live server's account registry: `anonymous` plus
    /// `alice`/`secret`.
    pub fn users() -> Arc<UserRegistry> {
        let users = Arc::new(UserRegistry::new().with_anonymous());
        users.add_user("alice", "secret");
        users
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum LoginState {
    Greeted,
    NeedPassword(String),
    LoggedIn,
}

/// Which transfer command owns a data connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferKind {
    /// Directory listing download.
    List,
    /// File download.
    Retr,
    /// File upload.
    Stor,
}

/// A modeled data transfer: everything the checker needs to judge the
/// observed outcome of one `Action::Defer` transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferSpec {
    /// 1-based per-connection transfer ordinal — the same counter the
    /// service's data tap stamps onto secondary traces, so the two join.
    pub ordinal: u32,
    /// The transfer command.
    pub kind: TransferKind,
    /// Byte-exact expected download payload (`List`/`Retr`). `None` for
    /// uploads, and for downloads of a tainted path (written by a `STOR`
    /// whose uploaded bytes were not observed).
    pub expect: Option<Vec<u8>>,
    /// Normalized upload target (`Stor` only).
    pub stor_path: Option<String>,
    /// `Stor` whose VFS write must fail (target is a directory / parent
    /// missing): the upload is accepted and drained, then rejected 550.
    pub static_fail: bool,
}

/// What the model says about one decoded request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepResult {
    /// Expect this `(code, multiline)` reply; the session continues.
    Reply(u16, bool),
    /// Expect this reply, then the server closes (QUIT).
    Close(u16, bool),
    /// A data transfer slot with outcome-dependent replies.
    Transfer(TransferSpec),
}

/// The per-connection specification machine.
pub struct FtpModel {
    state: LoginState,
    cwd: String,
    vfs: Vfs,
    users: Arc<UserRegistry>,
    pasv_pending: bool,
    next_ordinal: u32,
    tainted: std::collections::HashSet<String>,
}

impl Default for FtpModel {
    fn default() -> Self {
        Self::new()
    }
}

impl FtpModel {
    /// A fresh session over a replica of the fixture.
    pub fn new() -> Self {
        let vfs = Vfs::new();
        FtpFixture::populate(&vfs);
        Self {
            state: LoginState::Greeted,
            cwd: "/".to_string(),
            vfs,
            users: FtpFixture::users(),
            pasv_pending: false,
            next_ordinal: 0,
            tainted: std::collections::HashSet::new(),
        }
    }

    /// Tick the per-connection transfer ordinal, mirroring the service:
    /// it advances exactly when a `Defer` transfer closure is created
    /// (listener present and path resolved), whether or not a data
    /// socket is ultimately accepted.
    fn tick_ordinal(&mut self) -> u32 {
        self.next_ordinal += 1;
        self.next_ordinal
    }

    /// Would the replica VFS reject `vfs.write(path, …)`? Mirrors
    /// [`Vfs::write`]: the target must not be a directory and its parent
    /// must be an existing directory.
    fn stor_would_fail(&self, path: &str) -> bool {
        if self.vfs.is_dir(path) {
            return true;
        }
        let parent = match path.rfind('/') {
            Some(0) => "/",
            Some(i) => &path[..i],
            None => return true,
        };
        !self.vfs.is_dir(parent)
    }

    /// Commit a successful `STOR`'s effect to the replica. `observed` is
    /// the uploaded byte stream from the joined data trace; without one
    /// (control-only checking) the path is written empty and marked
    /// tainted so later downloads skip payload comparison.
    pub fn commit_stor(&mut self, spec: &TransferSpec, observed: Option<Vec<u8>>) {
        let Some(path) = &spec.stor_path else { return };
        match observed {
            Some(bytes) => {
                self.vfs.write(path, bytes);
                self.tainted.remove(path);
            }
            None => {
                self.vfs.write(path, Vec::new());
                self.tainted.insert(path.clone());
            }
        }
    }

    /// Advance the machine by one decoded request.
    pub fn step(&mut self, req: &FtpRequest) -> StepResult {
        use StepResult::{Close, Reply, Transfer};
        let cmd = match req {
            FtpRequest::Command(c) => c,
            FtpRequest::Malformed(_) => return Reply(500, false),
        };
        // Pre-login command set.
        match cmd {
            Command::User(name) => {
                if self.users.knows(name) {
                    self.state = LoginState::NeedPassword(name.clone());
                    return Reply(331, false);
                }
                self.state = LoginState::Greeted;
                return Reply(530, false);
            }
            Command::Pass(pw) => {
                let LoginState::NeedPassword(user) = self.state.clone() else {
                    return Reply(503, false);
                };
                if self.users.authenticate(&user, pw) {
                    self.state = LoginState::LoggedIn;
                    return Reply(230, false);
                }
                self.state = LoginState::Greeted;
                return Reply(530, false);
            }
            Command::Quit => return Close(221, false),
            Command::Syst => return Reply(215, false),
            Command::Noop => return Reply(200, false),
            Command::Unknown(_) => return Reply(502, false),
            _ => {}
        }
        if self.state != LoginState::LoggedIn {
            return Reply(530, false);
        }
        match cmd {
            Command::Pwd => Reply(257, false),
            Command::Cwd(dir) => match normalize(&self.cwd, dir) {
                Some(path) if self.vfs.is_dir(&path) => {
                    self.cwd = path;
                    Reply(250, false)
                }
                _ => Reply(550, false),
            },
            Command::Type(_) => Reply(200, false),
            Command::Mkd(dir) => match normalize(&self.cwd, dir) {
                Some(path) if self.vfs.mkdir(&path) => Reply(257, false),
                _ => Reply(550, false),
            },
            Command::Dele(file) => match normalize(&self.cwd, file) {
                Some(path) if self.vfs.delete(&path) => Reply(250, false),
                _ => Reply(550, false),
            },
            Command::Size(file) => match normalize(&self.cwd, file).and_then(|p| self.vfs.size(&p))
            {
                Some(_) => Reply(213, false),
                None => Reply(550, false),
            },
            Command::Stat(None) => Reply(211, true),
            Command::Stat(Some(p)) => match normalize(&self.cwd, p) {
                Some(t) if self.vfs.is_dir(&t) || self.vfs.size(&t).is_some() => Reply(211, true),
                _ => Reply(550, false),
            },
            Command::SiteDump => Reply(211, true),
            Command::Pasv => {
                self.pasv_pending = true;
                Reply(227, false)
            }
            Command::List(path) => {
                if !self.pasv_pending {
                    return Reply(503, false);
                }
                self.pasv_pending = false;
                let target = match path {
                    Some(p) => match normalize(&self.cwd, p) {
                        Some(t) => t,
                        // Listener consumed, no Defer created: no ordinal.
                        None => return Reply(550, false),
                    },
                    None => self.cwd.clone(),
                };
                let ordinal = self.tick_ordinal();
                match self.vfs.list(&target) {
                    // Fails inside the closure, before accepting the
                    // data socket: plain 550, ordinal consumed.
                    None => Reply(550, false),
                    Some(entries) => Transfer(TransferSpec {
                        ordinal,
                        kind: TransferKind::List,
                        expect: Some(listing_text(&entries).into_bytes()),
                        stor_path: None,
                        static_fail: false,
                    }),
                }
            }
            Command::Retr(file) => {
                if !self.pasv_pending {
                    return Reply(503, false);
                }
                self.pasv_pending = false;
                let Some(path) = normalize(&self.cwd, file) else {
                    return Reply(550, false);
                };
                let ordinal = self.tick_ordinal();
                match self.vfs.read(&path) {
                    None => Reply(550, false),
                    Some(bytes) => Transfer(TransferSpec {
                        ordinal,
                        kind: TransferKind::Retr,
                        expect: (!self.tainted.contains(&path)).then(|| bytes.to_vec()),
                        stor_path: None,
                        static_fail: false,
                    }),
                }
            }
            Command::Stor(file) => {
                if !self.pasv_pending {
                    return Reply(503, false);
                }
                self.pasv_pending = false;
                let Some(path) = normalize(&self.cwd, file) else {
                    return Reply(550, false);
                };
                let ordinal = self.tick_ordinal();
                let static_fail = self.stor_would_fail(&path);
                Transfer(TransferSpec {
                    ordinal,
                    kind: TransferKind::Stor,
                    expect: None,
                    stor_path: Some(path),
                    static_fail,
                })
            }
            Command::User(_)
            | Command::Pass(_)
            | Command::Quit
            | Command::Syst
            | Command::Noop
            | Command::Unknown(_) => unreachable!("handled before the login gate"),
        }
    }
}

/// The expected `(code, multiline)` reply sequence for `inbound` on the
/// all-success path, starting with the 220 greeting. Transfers contribute
/// their `150` + `226` pair (or the statically-predicted `550`); this is
/// the complete-delivery target for strict (fault-free, abort-free)
/// connections.
pub fn expected_replies(inbound: &[u8]) -> Vec<(u16, bool)> {
    let mut model = FtpModel::new();
    let mut expected = vec![(220, false)];
    for req in &extract_commands(inbound).requests {
        match model.step(req) {
            StepResult::Reply(code, multi) => expected.push((code, multi)),
            StepResult::Close(code, multi) => {
                expected.push((code, multi));
                break;
            }
            StepResult::Transfer(spec) => {
                if spec.static_fail {
                    expected.push((550, false));
                } else {
                    expected.push((150, false));
                    expected.push((226, false));
                    model.commit_stor(&spec, None);
                }
            }
        }
    }
    expected
}

/// For each `PASV` command in `inbound`, in order, whether the model
/// expects it to be answered `227` — i.e. whether the server bound a
/// listener the paired data op should dial. Pre-login rejections and
/// commands after a session close yield `false`; the driver must skip
/// those ops, or every later op would pair with the wrong listener.
pub fn pasv_outcomes(inbound: &[u8]) -> Vec<bool> {
    let mut model = FtpModel::new();
    let mut outcomes = Vec::new();
    let mut open = true;
    for req in &extract_commands(inbound).requests {
        let is_pasv = matches!(req, FtpRequest::Command(Command::Pasv));
        if !open {
            if is_pasv {
                outcomes.push(false);
            }
            continue;
        }
        match model.step(req) {
            StepResult::Reply(code, _) => {
                if is_pasv {
                    outcomes.push(code == 227);
                }
            }
            StepResult::Close(..) => {
                if is_pasv {
                    outcomes.push(false);
                }
                open = false;
            }
            StepResult::Transfer(spec) => model.commit_stor(&spec, None),
        }
    }
    outcomes
}

/// Data-plane context for [`check_ftp_session`].
pub struct FtpDataCtx<'a> {
    /// Data-connection traces joined to this control connection (any
    /// order; matched by transfer ordinal).
    pub children: &'a [ConnTrace],
    /// Whether the run recorded data traces at all. `false` (control-only
    /// checking) skips the join, payload, and ordering checks.
    pub recorded: bool,
    /// Tolerate data-plane failure outcomes (`425`, truncated downloads):
    /// set when the connection's fault profile is not `Clean`, it closes
    /// early, or a planned data op aborts mid-transfer.
    pub tolerant: bool,
}

impl FtpDataCtx<'_> {
    /// Control-only checking: no data traces, everything tolerated.
    pub fn control_only() -> FtpDataCtx<'static> {
        FtpDataCtx {
            children: &[],
            recorded: false,
            tolerant: true,
        }
    }
}

/// Check one control-connection trace, plus its joined data-connection
/// traces, against the model.
pub fn check_ftp_session(trace: &ConnTrace, strict: bool, data: &FtpDataCtx) -> Vec<Violation> {
    let mut violations = Vec::new();
    if let Some(v) = crate::event_order_violation(trace) {
        violations.push(v);
    }
    let observed = split_replies(&trace.outbound());
    let blocks = &observed.complete;
    let vio = |kind, detail| Violation {
        accept_index: trace.accept_index,
        profile: trace.profile.clone(),
        kind,
        detail,
    };
    let child_for = |ordinal: u32| {
        data.children
            .iter()
            .find(|c| c.parent.map(|p| p.transfer_ordinal) == Some(ordinal))
    };

    let mut model = FtpModel::new();
    let mut bi = 0usize; // next observed block
    let mut mismatch = false;
    let mut closed = false;
    let requests = extract_commands(&trace.inbound()).requests;
    let mut req_iter = requests.iter();
    // The greeting, then one step per decoded request.
    let mut pending: Option<StepResult> = Some(StepResult::Reply(220, false));
    'walk: loop {
        let step = match pending.take() {
            Some(s) => s,
            None => {
                if closed {
                    break;
                }
                match req_iter.next() {
                    Some(req) => model.step(req),
                    None => break,
                }
            }
        };
        match step {
            StepResult::Reply(code, multi) | StepResult::Close(code, multi) => {
                if matches!(step, StepResult::Close(..)) {
                    closed = true;
                }
                let Some(block) = blocks.get(bi) else {
                    break; // prefix end: delivery was cut here
                };
                if (block.code, block.multiline) != (code, multi) {
                    violations.push(vio(
                        "reply-mismatch",
                        format!(
                            "reply {}: got {}{} {:?}, model expects {}{}",
                            bi,
                            block.code,
                            if block.multiline { "-" } else { "" },
                            block.text,
                            code,
                            if multi { "-" } else { "" },
                        ),
                    ));
                    mismatch = true;
                    break;
                }
                bi += 1;
            }
            StepResult::Transfer(spec) => {
                let Some(block) = blocks.get(bi) else {
                    break; // outcome never delivered
                };
                let child = child_for(spec.ordinal);
                match block.code {
                    150 if !spec.static_fail => {
                        let offset_150 = block.offset;
                        bi += 1;
                        match blocks.get(bi) {
                            None => {} // cut between 150 and 226 (faults)
                            Some(b2) if b2.code == 226 && !b2.multiline => bi += 1,
                            Some(b2) => {
                                violations.push(vio(
                                    "reply-mismatch",
                                    format!(
                                        "reply {}: got {} {:?} after 150, model expects 226",
                                        bi, b2.code, b2.text
                                    ),
                                ));
                                mismatch = true;
                                break 'walk;
                            }
                        }
                        check_transfer_success(
                            trace,
                            &spec,
                            child,
                            data,
                            offset_150,
                            &mut model,
                            &mut violations,
                        );
                    }
                    425 if !spec.static_fail => {
                        bi += 1;
                        if !data.tolerant {
                            violations.push(vio(
                                "unexpected-data-failure",
                                format!(
                                    "transfer {} ({:?}) failed 425 on a clean, abort-free \
                                     connection",
                                    spec.ordinal, spec.kind
                                ),
                            ));
                        }
                        // A partially-served download must still be a
                        // prefix of the modeled payload.
                        if let (Some(child), Some(expect)) = (child, &spec.expect) {
                            let sent = child.outbound();
                            if !expect.starts_with(&sent) {
                                violations.push(vio(
                                    "data-payload-mismatch",
                                    format!(
                                        "transfer {} ({:?}): failed transfer sent {} bytes that \
                                         are not a prefix of the {}-byte expected payload",
                                        spec.ordinal,
                                        spec.kind,
                                        sent.len(),
                                        expect.len()
                                    ),
                                ));
                            }
                        }
                    }
                    550 if spec.static_fail => {
                        // Upload accepted and drained, then rejected; no
                        // replica write.
                        bi += 1;
                    }
                    _ => {
                        violations.push(vio(
                            "reply-mismatch",
                            format!(
                                "reply {}: got {} {:?} for transfer {} ({:?}), model allows {}",
                                bi,
                                block.code,
                                block.text,
                                spec.ordinal,
                                spec.kind,
                                if spec.static_fail {
                                    "550"
                                } else {
                                    "150+226 or 425"
                                },
                            ),
                        ));
                        mismatch = true;
                        break 'walk;
                    }
                }
            }
        }
    }

    if !mismatch && bi < blocks.len() {
        let block = &blocks[bi];
        violations.push(vio(
            "excess-reply",
            format!(
                "reply {} ({} {:?}) past the {} the model allows",
                bi,
                block.code,
                block.text,
                blocks.len()
            ),
        ));
    }
    if let ReplyStreamEnd::Malformed { offset, ref why } = observed.end {
        violations.push(vio(
            "malformed-replies",
            format!("outbound unparseable as FTP replies at +{offset}: {why}"),
        ));
    }
    if strict && violations.is_empty() {
        let expected = expected_replies(&trace.inbound());
        if blocks.len() != expected.len() || observed.end != ReplyStreamEnd::Clean {
            violations.push(vio(
                "incomplete-delivery",
                format!(
                    "clean session delivered {} of {} expected replies (end: {:?})",
                    blocks.len(),
                    expected.len(),
                    observed.end,
                ),
            ));
        }
    }
    violations
}

/// The success-outcome checks for one transfer: payload byte-equality,
/// STOR write-back into the replica, data-before-completion ordering, and
/// presence of the joined data trace.
fn check_transfer_success(
    trace: &ConnTrace,
    spec: &TransferSpec,
    child: Option<&ConnTrace>,
    data: &FtpDataCtx,
    offset_150: usize,
    model: &mut FtpModel,
    violations: &mut Vec<Violation>,
) {
    let vio = |kind, detail| Violation {
        accept_index: trace.accept_index,
        profile: trace.profile.clone(),
        kind,
        detail,
    };
    match child {
        None => {
            // Success reported but no data connection was ever recorded:
            // with the tap attached that means the server lied about the
            // transfer (or completed it out of band).
            if data.recorded {
                violations.push(vio(
                    "missing-data-trace",
                    format!(
                        "transfer {} ({:?}) reported 150/226 but no data connection was recorded",
                        spec.ordinal, spec.kind
                    ),
                ));
            }
            if spec.kind == TransferKind::Stor {
                model.commit_stor(spec, None);
            }
        }
        Some(child) => {
            match spec.kind {
                TransferKind::List | TransferKind::Retr => {
                    if let Some(expect) = &spec.expect {
                        let sent = child.outbound();
                        if &sent != expect {
                            violations.push(vio(
                                "data-payload-mismatch",
                                format!(
                                    "transfer {} ({:?}): data socket carried {} bytes, replica \
                                     expects {} (first divergence at byte {})",
                                    spec.ordinal,
                                    spec.kind,
                                    sent.len(),
                                    expect.len(),
                                    sent.iter()
                                        .zip(expect.iter())
                                        .position(|(a, b)| a != b)
                                        .unwrap_or_else(|| sent.len().min(expect.len())),
                                ),
                            ));
                        }
                    }
                }
                TransferKind::Stor => {
                    model.commit_stor(spec, Some(child.inbound()));
                }
            }
            // 150/226 are encoded and written strictly after the transfer
            // closure returns, and the closure closes the data socket
            // (recording its final event) before returning — so every
            // data event must be sequenced before the control write that
            // carried the 150.
            if let (Some(data_last), Some(ctrl_seq)) =
                (child.last_seq(), trace.seq_at_outbound_offset(offset_150))
            {
                if data_last > ctrl_seq {
                    violations.push(vio(
                        "premature-completion",
                        format!(
                            "transfer {} ({:?}): completion reply written (seq {}) before the \
                             data socket finished (seq {})",
                            spec.ordinal, spec.kind, ctrl_seq, data_last
                        ),
                    ));
                }
            }
        }
    }
}

/// Check one control-connection trace against the model, control channel
/// only (no data traces). Kept for corpus replay of control-only
/// schedules and hand-built traces; explorer runs use
/// [`check_ftp_session`] with the recorded data context.
pub fn check_ftp(trace: &ConnTrace, strict: bool) -> Vec<Violation> {
    let data = FtpDataCtx {
        tolerant: !strict,
        ..FtpDataCtx::control_only()
    };
    check_ftp_session(trace, strict, &data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nserver_core::tap::{ConnTrace, DataParent, TapEvent};

    fn seq(inbound: &str) -> Vec<(u16, bool)> {
        expected_replies(inbound.as_bytes())
    }

    #[test]
    fn login_flow_codes() {
        assert_eq!(
            seq("USER alice\r\nPASS secret\r\nPWD\r\nQUIT\r\n"),
            vec![
                (220, false),
                (331, false),
                (230, false),
                (257, false),
                (221, false)
            ]
        );
    }

    #[test]
    fn wrong_password_resets_the_fsm() {
        assert_eq!(
            seq("USER alice\r\nPASS wrong\r\nPASS secret\r\n"),
            vec![(220, false), (331, false), (530, false), (503, false)]
        );
    }

    #[test]
    fn login_gate_and_pre_login_commands() {
        assert_eq!(
            seq("PWD\r\nSYST\r\nNOOP\r\nXYZZY\r\n"),
            vec![
                (220, false),
                (530, false),
                (215, false),
                (200, false),
                (502, false)
            ]
        );
    }

    #[test]
    fn commands_after_quit_are_dead() {
        assert_eq!(
            seq("QUIT\r\nSYST\r\n"),
            vec![(220, false), (221, false)],
            "the server closes on QUIT"
        );
    }

    #[test]
    fn replica_vfs_tracks_own_mutations() {
        let replies =
            seq("USER alice\r\nPASS secret\r\nMKD /inbox\r\nMKD /inbox\r\nCWD /inbox\r\nSTAT\r\n");
        assert_eq!(
            &replies[3..],
            &[(257, false), (550, false), (250, false), (211, true)]
        );
    }

    #[test]
    fn transfers_contribute_success_pairs_to_the_expected_sequence() {
        assert_eq!(
            seq("USER alice\r\nPASS secret\r\nLIST\r\nRETR /pub/hello.txt\r\n"),
            vec![
                (220, false),
                (331, false),
                (230, false),
                (503, false),
                (503, false)
            ],
            "transfers without PASV are 503"
        );
        assert_eq!(
            seq("USER alice\r\nPASS secret\r\nPASV\r\nRETR /pub/hello.txt\r\n"),
            vec![
                (220, false),
                (331, false),
                (230, false),
                (227, false),
                (150, false),
                (226, false)
            ]
        );
        // A STOR makes the path visible to a later RETR (write-back).
        assert_eq!(
            &seq("USER alice\r\nPASS secret\r\nPASV\r\nSTOR /up.bin\r\nPASV\r\nRETR /up.bin\r\n")
                [3..],
            &[
                (227, false),
                (150, false),
                (226, false),
                (227, false),
                (150, false),
                (226, false)
            ]
        );
        // A STOR into a missing directory drains and rejects.
        assert_eq!(
            seq("USER alice\r\nPASS secret\r\nPASV\r\nSTOR /no/dir.bin\r\n").last(),
            Some(&(550, false))
        );
    }

    fn login_retr_inbound() -> &'static [u8] {
        b"USER alice\r\nPASS secret\r\nPASV\r\nRETR /pub/hello.txt\r\n"
    }

    fn control_outbound() -> Vec<u8> {
        b"220 ready\r\n331 pw\r\n230 in\r\n227 Entering Passive Mode (127,0,0,1,4,1)\r\n\
          150 Opening\r\n226 Done\r\n"
            .to_vec()
    }

    /// A control trace plus one data child carrying `payload`, with
    /// sequence stamps placing the data close before (`ok`) or after the
    /// completion write.
    fn transfer_traces(payload: &[u8], data_before_completion: bool) -> (ConnTrace, ConnTrace) {
        let out = control_outbound();
        let prefix_len = out.len() - b"150 Opening\r\n226 Done\r\n".len();
        let mut control = ConnTrace::synthetic(
            1,
            "peer",
            "Clean",
            vec![
                TapEvent::Read(login_retr_inbound().to_vec()),
                TapEvent::Wrote(out[..prefix_len].to_vec()),
                TapEvent::Wrote(out[prefix_len..].to_vec()),
            ],
        );
        let mut child = ConnTrace::synthetic(
            1,
            "data-peer",
            "Clean",
            vec![TapEvent::Wrote(payload.to_vec()), TapEvent::Shutdown],
        );
        child.parent = Some(DataParent {
            control_accept_index: 1,
            transfer_ordinal: 1,
        });
        if data_before_completion {
            control.seqs = vec![0, 1, 4];
            child.seqs = vec![2, 3];
        } else {
            control.seqs = vec![0, 1, 2];
            child.seqs = vec![3, 4];
        }
        (control, child)
    }

    fn check_with_child(control: &ConnTrace, child: ConnTrace, strict: bool) -> Vec<Violation> {
        let children = vec![child];
        let data = FtpDataCtx {
            children: &children,
            recorded: true,
            tolerant: false,
        };
        check_ftp_session(control, strict, &data)
    }

    #[test]
    fn exact_download_payload_passes_strict() {
        let (control, child) = transfer_traces(b"hello ftp", true);
        assert_eq!(check_with_child(&control, child, true), vec![]);
    }

    #[test]
    fn truncated_download_payload_is_a_violation() {
        let (control, child) = transfer_traces(b"hello", true);
        let v = check_with_child(&control, child, false);
        assert_eq!(v[0].kind, "data-payload-mismatch", "{v:?}");
    }

    #[test]
    fn completion_before_data_close_is_premature() {
        let (control, child) = transfer_traces(b"hello ftp", false);
        let v = check_with_child(&control, child, false);
        assert_eq!(v[0].kind, "premature-completion", "{v:?}");
    }

    #[test]
    fn success_without_a_data_trace_is_missing() {
        let (control, _) = transfer_traces(b"hello ftp", true);
        let data = FtpDataCtx {
            children: &[],
            recorded: true,
            tolerant: false,
        };
        let v = check_ftp_session(&control, false, &data);
        assert_eq!(v[0].kind, "missing-data-trace", "{v:?}");
    }

    #[test]
    fn data_failure_is_tolerated_only_on_tolerant_connections() {
        let mut out =
            b"220 r\r\n331 p\r\n230 i\r\n227 Entering Passive Mode (127,0,0,1,4,1)\r\n".to_vec();
        out.extend_from_slice(b"425 Can't open data connection.\r\n");
        let control = ConnTrace::synthetic(
            1,
            "peer",
            "Clean",
            vec![
                TapEvent::Read(login_retr_inbound().to_vec()),
                TapEvent::Wrote(out),
            ],
        );
        let tolerant = FtpDataCtx {
            children: &[],
            recorded: true,
            tolerant: true,
        };
        assert_eq!(check_ftp_session(&control, false, &tolerant), vec![]);
        let strict_data = FtpDataCtx {
            children: &[],
            recorded: true,
            tolerant: false,
        };
        let v = check_ftp_session(&control, false, &strict_data);
        assert_eq!(v[0].kind, "unexpected-data-failure", "{v:?}");
    }

    #[test]
    fn check_accepts_prefix_and_catches_wrong_code() {
        let inbound = b"USER alice\r\nPASS secret\r\n";
        let good = ConnTrace::synthetic(
            1,
            "peer-1",
            "Clean",
            vec![
                TapEvent::Read(inbound.to_vec()),
                TapEvent::Wrote(b"220 ready\r\n331 need password\r\n".to_vec()),
            ],
        );
        assert!(check_ftp(&good, false).is_empty());
        assert_eq!(
            check_ftp(&good, true)[0].kind,
            "incomplete-delivery",
            "strict wants the 230 too"
        );
        let bad = ConnTrace {
            events: vec![
                TapEvent::Read(inbound.to_vec()),
                TapEvent::Wrote(b"220 ready\r\n230 logged in\r\n".to_vec()),
            ],
            ..good
        };
        assert_eq!(check_ftp(&bad, false)[0].kind, "reply-mismatch");
    }
}
