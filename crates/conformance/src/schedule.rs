//! Adversarial run descriptions: seeded generation, a text wire format
//! for counterexample artifacts, and interleaving enumeration.
//!
//! A [`Schedule`] is everything needed to reproduce one exploration run
//! bit-for-bit: the fault plan, each client's byte script split into
//! segments, and the global delivery order. Generation is a pure function
//! of `(proto, seed)` via [`nserver_netsim::SimRng`], so CI failures
//! replay anywhere from the seed alone, and shrunken counterexamples
//! serialize to a format stable enough to check into `corpus/`.

use nserver_core::fault::FaultPlan;
use nserver_netsim::SimRng;

/// Which protocol stack a schedule drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Proto {
    /// COPS-HTTP: static file service over the HTTP/1.1 subset.
    Http,
    /// COPS-FTP: the control-channel command state machine.
    Ftp,
}

impl Proto {
    fn name(self) -> &'static str {
        match self {
            Proto::Http => "http",
            Proto::Ftp => "ftp",
        }
    }
}

/// One client connection's script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnScript {
    /// Byte segments, delivered one per scheduled step, in order.
    pub segments: Vec<Vec<u8>>,
    /// Abruptly close the connection right after the last segment, without
    /// waiting for responses — the early-close/pipelining hazard.
    pub close_early: bool,
}

impl ConnScript {
    /// All script bytes, concatenated.
    pub fn bytes(&self) -> Vec<u8> {
        self.segments.concat()
    }
}

/// One delivery step in the global interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    /// Which connection's next segment to deliver.
    pub conn: usize,
    /// Milliseconds to sleep after delivering it.
    pub pause_ms: u64,
}

/// A complete, replayable exploration run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Protocol under test.
    pub proto: Proto,
    /// Generation seed (0 for hand-written corpus schedules).
    pub seed: u64,
    /// Transport fault plan applied server-side.
    pub plan: FaultPlan,
    /// Per-connection scripts; index = connect order.
    pub conns: Vec<ConnScript>,
    /// Interleaved delivery order; each conn appears exactly
    /// `segments.len()` times.
    pub order: Vec<Step>,
}

/// Generate the schedule for `(proto, seed)`.
pub fn generate(proto: Proto, seed: u64) -> Schedule {
    match proto {
        Proto::Http => generate_http(seed),
        Proto::Ftp => generate_ftp(seed),
    }
}

/// Draw a fault plan. Roughly a third of seeds are fault-free so the
/// strict (byte-equal) arm of the models stays exercised.
fn gen_plan(rng: &mut SimRng) -> FaultPlan {
    let mut plan = FaultPlan::new(rng.next_u64());
    if rng.chance(0.65) {
        plan.reset_per_mille = [0, 120, 250][rng.below(3) as usize];
        plan.storm_per_mille = [0, 120][rng.below(2) as usize];
        plan.short_io_per_mille = [0, 150][rng.below(2) as usize];
        plan.corrupt_per_mille = [0, 100][rng.below(2) as usize];
        plan.stall_per_mille = [0, 80][rng.below(2) as usize];
        if rng.chance(0.2) {
            plan.accept_fail_every = rng.range(2, 5) as u32;
        }
    }
    plan
}

/// Split `bytes` into 1–4 non-empty segments at seeded cut points.
fn split_segments(rng: &mut SimRng, bytes: Vec<u8>) -> Vec<Vec<u8>> {
    if bytes.len() < 2 {
        return vec![bytes];
    }
    let nsegs = rng.range(1, 4.min(bytes.len() as u64)) as usize;
    let mut cuts = std::collections::BTreeSet::new();
    while cuts.len() < nsegs - 1 {
        cuts.insert(rng.range(1, bytes.len() as u64 - 1) as usize);
    }
    let mut segs = Vec::with_capacity(nsegs);
    let mut prev = 0;
    for cut in cuts.into_iter().chain(std::iter::once(bytes.len())) {
        segs.push(bytes[prev..cut].to_vec());
        prev = cut;
    }
    segs
}

/// Interleave the connections' segments into a global order, preserving
/// each connection's own segment order.
fn gen_order(rng: &mut SimRng, conns: &[ConnScript]) -> Vec<Step> {
    let mut remaining: Vec<usize> = conns.iter().map(|c| c.segments.len()).collect();
    let mut total: usize = remaining.iter().sum();
    let mut order = Vec::with_capacity(total);
    while total > 0 {
        let mut pick = rng.below(total as u64) as usize;
        let conn = remaining
            .iter()
            .position(|&r| {
                if pick < r {
                    true
                } else {
                    pick -= r;
                    false
                }
            })
            .expect("non-empty remaining");
        remaining[conn] -= 1;
        total -= 1;
        order.push(Step {
            conn,
            pause_ms: rng.below(3),
        });
    }
    order
}

fn generate_http(seed: u64) -> Schedule {
    let mut rng = SimRng::new(seed ^ 0x4854_5450); // "HTTP"
    let plan = gen_plan(&mut rng);
    let nconns = rng.range(1, 4) as usize;
    let mut conns = Vec::with_capacity(nconns);
    for _ in 0..nconns {
        let nreqs = rng.range(1, 4);
        let mut bytes = Vec::new();
        for r in 0..nreqs {
            let method = if rng.chance(0.25) { "HEAD" } else { "GET" };
            let target = [
                "/index.html",
                "/big.bin",
                "/missing.html",
                "/hello%20world.txt",
                "/%2e%2e/secret",
                "/index.html?q=1",
                "/%zz",
            ][rng.below(7) as usize];
            let http10 = rng.chance(0.15);
            let version = if http10 { "HTTP/1.0" } else { "HTTP/1.1" };
            let last = r + 1 == nreqs;
            // Mid-stream requests stay keep-alive most of the time so
            // pipelines actually form; a late `Connection: close` (or a
            // bare 1.0 request) tests that the server stops serving the
            // rest of the pipeline.
            let connection = if http10 {
                if !last && rng.chance(0.8) {
                    Some("keep-alive")
                } else {
                    None
                }
            } else if rng.chance(if last { 0.4 } else { 0.1 }) {
                Some("close")
            } else {
                None
            };
            bytes.extend_from_slice(
                format!("{method} {target} {version}\r\nHost: conformance\r\n").as_bytes(),
            );
            if let Some(c) = connection {
                bytes.extend_from_slice(format!("Connection: {c}\r\n").as_bytes());
            }
            bytes.extend_from_slice(b"\r\n");
        }
        let segments = split_segments(&mut rng, bytes);
        conns.push(ConnScript {
            segments,
            close_early: rng.chance(0.2),
        });
    }
    let order = gen_order(&mut rng, &conns);
    Schedule {
        proto: Proto::Http,
        seed,
        plan,
        conns,
        order,
    }
}

fn generate_ftp(seed: u64) -> Schedule {
    let mut rng = SimRng::new(seed ^ 0x46_5450); // "FTP"
    let plan = gen_plan(&mut rng);
    let nconns = rng.range(1, 3) as usize;
    let mut conns = Vec::with_capacity(nconns);
    for ci in 0..nconns {
        let ncmds = rng.range(2, 8);
        let mut lines: Vec<String> = Vec::new();
        for j in 0..ncmds {
            // Paths are absolute or the two safe relatives, and MKD targets
            // are unique per (schedule, connection) so the model's replica
            // VFS cannot diverge from the shared one via cross-connection
            // mutation. No PASV/DELE and no transfers after PASV: those
            // reach out-of-band state the trace model cannot see.
            let cmd = match rng.below(22) {
                0 => "USER alice".to_string(),
                1 => "USER anonymous".to_string(),
                2 => "USER nobody".to_string(),
                3 => "PASS secret".to_string(),
                4 => "PASS guest".to_string(),
                5 => "PASS wrong".to_string(),
                6 => "PWD".to_string(),
                7 => "SYST".to_string(),
                8 => "NOOP".to_string(),
                9 => "TYPE I".to_string(),
                10 => "TYPE A".to_string(),
                11 => "CWD /pub".to_string(),
                12 => "CWD pub".to_string(),
                13 => "CWD ..".to_string(),
                14 => "CWD /nope".to_string(),
                15 => "SIZE /pub/hello.txt".to_string(),
                16 => "STAT".to_string(),
                17 => "STAT /pub".to_string(),
                18 => format!("MKD /m{ci}k{j}"),
                19 => "LIST".to_string(),
                20 => "RETR /pub/hello.txt".to_string(),
                _ => "XYZZY".to_string(),
            };
            lines.push(cmd);
        }
        if rng.chance(0.4) {
            lines.push("QUIT".to_string());
        }
        let mut bytes = Vec::new();
        for l in &lines {
            bytes.extend_from_slice(l.as_bytes());
            bytes.extend_from_slice(b"\r\n");
        }
        let segments = split_segments(&mut rng, bytes);
        conns.push(ConnScript {
            segments,
            close_early: rng.chance(0.2),
        });
    }
    let order = gen_order(&mut rng, &conns);
    Schedule {
        proto: Proto::Ftp,
        seed,
        plan,
        conns,
        order,
    }
}

fn hex_encode(b: &[u8]) -> String {
    b.iter().map(|x| format!("{x:02x}")).collect()
}

fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex".into());
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).map_err(|e| e.to_string()))
        .collect()
}

impl Schedule {
    /// Render as the line-based counterexample format.
    pub fn serialize(&self) -> String {
        let mut out = String::from("conformance-schedule v1\n");
        out.push_str(&format!("proto {}\n", self.proto.name()));
        out.push_str(&format!("seed {}\n", self.seed));
        let p = &self.plan;
        out.push_str(&format!(
            "plan {} {} {} {} {} {} {} {}\n",
            p.seed,
            p.reset_per_mille,
            p.storm_per_mille,
            p.short_io_per_mille,
            p.corrupt_per_mille,
            p.stall_per_mille,
            p.accept_fail_every,
            p.faulty_first,
        ));
        for c in &self.conns {
            out.push_str(&format!("conn close_early={}\n", u8::from(c.close_early)));
            for s in &c.segments {
                out.push_str(&format!("seg {}\n", hex_encode(s)));
            }
        }
        for s in &self.order {
            out.push_str(&format!("step {} {}\n", s.conn, s.pause_ms));
        }
        out
    }

    /// Parse the format produced by [`Schedule::serialize`].
    pub fn parse(text: &str) -> Result<Schedule, String> {
        let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
        if lines.next() != Some("conformance-schedule v1") {
            return Err("missing 'conformance-schedule v1' header".into());
        }
        let mut proto = None;
        let mut seed = 0u64;
        let mut plan = FaultPlan::default();
        let mut conns: Vec<ConnScript> = Vec::new();
        let mut order = Vec::new();
        for line in lines {
            let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
            match key {
                "proto" => {
                    proto = Some(match rest {
                        "http" => Proto::Http,
                        "ftp" => Proto::Ftp,
                        other => return Err(format!("unknown proto {other:?}")),
                    })
                }
                "seed" => seed = rest.parse().map_err(|e| format!("seed: {e}"))?,
                "plan" => {
                    let f: Vec<u64> = rest
                        .split_whitespace()
                        .map(|t| t.parse().map_err(|e| format!("plan field: {e}")))
                        .collect::<Result<_, _>>()?;
                    if f.len() != 8 {
                        return Err(format!("plan needs 8 fields, got {}", f.len()));
                    }
                    plan = FaultPlan {
                        seed: f[0],
                        reset_per_mille: f[1] as u16,
                        storm_per_mille: f[2] as u16,
                        short_io_per_mille: f[3] as u16,
                        corrupt_per_mille: f[4] as u16,
                        stall_per_mille: f[5] as u16,
                        accept_fail_every: f[6] as u32,
                        faulty_first: f[7] as u32,
                    };
                }
                "conn" => {
                    let close_early = rest
                        .strip_prefix("close_early=")
                        .ok_or("conn line needs close_early=")?
                        == "1";
                    conns.push(ConnScript {
                        segments: Vec::new(),
                        close_early,
                    });
                }
                "seg" => conns
                    .last_mut()
                    .ok_or("seg before any conn line")?
                    .segments
                    .push(hex_decode(rest)?),
                "step" => {
                    let (c, p) = rest.split_once(' ').ok_or("step needs two fields")?;
                    order.push(Step {
                        conn: c.parse().map_err(|e| format!("step conn: {e}"))?,
                        pause_ms: p.parse().map_err(|e| format!("step pause: {e}"))?,
                    });
                }
                other => return Err(format!("unknown line key {other:?}")),
            }
        }
        let proto = proto.ok_or("missing proto line")?;
        let sched = Schedule {
            proto,
            seed,
            plan,
            conns,
            order,
        };
        sched.check_consistency()?;
        Ok(sched)
    }

    /// Structural sanity: every conn has segments, every step indexes a
    /// conn, and each conn is stepped exactly `segments.len()` times.
    pub fn check_consistency(&self) -> Result<(), String> {
        let mut counts = vec![0usize; self.conns.len()];
        for s in &self.order {
            *counts.get_mut(s.conn).ok_or_else(|| {
                format!("step references conn {} of {}", s.conn, self.conns.len())
            })? += 1;
        }
        for (i, (c, n)) in self.conns.iter().zip(&counts).enumerate() {
            if c.segments.is_empty() {
                return Err(format!("conn {i} has no segments"));
            }
            if c.segments.len() != *n {
                return Err(format!(
                    "conn {i} has {} segments but {} steps",
                    c.segments.len(),
                    n
                ));
            }
        }
        Ok(())
    }

    /// FNV-1a 64 over the serialized form: the distinct-schedule counter.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in self.serialize().as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// The same schedule with a different interleaving.
    pub fn with_order(&self, order: Vec<Step>) -> Schedule {
        let mut s = self.clone();
        s.order = order;
        s
    }
}

/// Every interleaving of `seg_counts` (segments per connection) that
/// preserves each connection's own order, with zero pauses. The count is
/// the multinomial coefficient — keep inputs tiny (it is meant for the
/// exhaustive small-case exploration tests).
pub fn enumerate_orders(seg_counts: &[usize]) -> Vec<Vec<Step>> {
    let mut out = Vec::new();
    let mut remaining = seg_counts.to_vec();
    let mut prefix = Vec::new();
    fn rec(remaining: &mut [usize], prefix: &mut Vec<Step>, out: &mut Vec<Vec<Step>>) {
        if remaining.iter().all(|&r| r == 0) {
            out.push(prefix.clone());
            return;
        }
        for c in 0..remaining.len() {
            if remaining[c] > 0 {
                remaining[c] -= 1;
                prefix.push(Step {
                    conn: c,
                    pause_ms: 0,
                });
                rec(remaining, prefix, out);
                prefix.pop();
                remaining[c] += 1;
            }
        }
    }
    rec(&mut remaining, &mut prefix, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        for proto in [Proto::Http, Proto::Ftp] {
            let a = generate(proto, 7);
            let b = generate(proto, 7);
            assert_eq!(a, b);
            assert_ne!(a, generate(proto, 8));
        }
    }

    #[test]
    fn generated_schedules_are_consistent() {
        for proto in [Proto::Http, Proto::Ftp] {
            for seed in 0..50 {
                let s = generate(proto, seed);
                s.check_consistency()
                    .unwrap_or_else(|e| panic!("{proto:?} seed {seed}: {e}"));
                assert!(!s.conns.is_empty());
            }
        }
    }

    #[test]
    fn serialize_parse_round_trips() {
        for proto in [Proto::Http, Proto::Ftp] {
            for seed in 0..20 {
                let s = generate(proto, seed);
                let back = Schedule::parse(&s.serialize()).expect("parse back");
                assert_eq!(s, back, "{proto:?} seed {seed}");
                assert_eq!(s.fingerprint(), back.fingerprint());
            }
        }
    }

    #[test]
    fn fingerprints_are_distinct_across_seeds() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..100 {
            assert!(seen.insert(generate(Proto::Http, seed).fingerprint()));
            assert!(seen.insert(generate(Proto::Ftp, seed).fingerprint()));
        }
    }

    #[test]
    fn ftp_scripts_stay_under_the_codec_line_budget() {
        for seed in 0..100 {
            for c in generate(Proto::Ftp, seed).conns {
                assert!(c.bytes().len() < 4096, "seed {seed} script too long");
            }
        }
    }

    #[test]
    fn enumerate_orders_is_the_multinomial() {
        assert_eq!(enumerate_orders(&[2, 1]).len(), 3);
        assert_eq!(enumerate_orders(&[2, 2]).len(), 6);
        assert_eq!(enumerate_orders(&[1, 1, 1]).len(), 6);
        for order in enumerate_orders(&[2, 2]) {
            assert_eq!(order.len(), 4);
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Schedule::parse("nonsense").is_err());
        assert!(Schedule::parse("conformance-schedule v1\nproto http\nseg 00\n").is_err());
        let missing_step = "conformance-schedule v1\nproto http\nseed 1\n\
                            plan 1 0 0 0 0 0 0 0\nconn close_early=0\nseg 41\n";
        assert!(
            Schedule::parse(missing_step).is_err(),
            "step count mismatch"
        );
    }
}
