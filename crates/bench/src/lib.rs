//! # nserver-bench
//!
//! Experiment harnesses regenerating every table and figure of the
//! paper's evaluation section. One binary per artifact:
//!
//! | binary             | reproduces |
//! |--------------------|------------|
//! | `table1_options`   | Table 1 — option values for COPS-FTP / COPS-HTTP |
//! | `table2_crosscut`  | Table 2 — option × class crosscut matrix |
//! | `table3_ftp_code`  | Table 3 — COPS-FTP code distribution |
//! | `table4_http_code` | Table 4 — COPS-HTTP code distribution |
//! | `fig3_throughput`  | Fig. 3 — throughput vs #clients, COPS-HTTP vs Apache |
//! | `fig4_fairness`    | Fig. 4 — Jain fairness vs #clients |
//! | `fig5_scheduling`  | Fig. 5 — differentiated service throughput |
//! | `fig6_overload`    | Fig. 6 — response time with/without overload control |
//!
//! Each binary prints an aligned table (with the paper's qualitative
//! expectations alongside) and writes a CSV into `results/`.
//! Simulation-backed figures accept `--quick` for a shortened run.

use std::fmt::Write as _;
use std::path::PathBuf;

/// The client-count ladder of Figures 3 and 4 (log-scale x axis, 1…1024).
pub const CLIENT_LADDER: [usize; 11] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

/// The client-count ladder of Figure 6 (1…128).
pub const FIG6_LADDER: [usize; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// Where result CSVs go (workspace `results/`).
pub fn results_dir() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Workspace `crates/` directory (to read handwritten sources for the
/// code-distribution tables).
pub fn crates_dir() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .map(|p| p.to_path_buf())
        .unwrap_or_default()
}

/// Write a CSV file into `results/`; prints the path on success.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let dir = results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(name);
    let mut text = String::from(header);
    text.push('\n');
    for r in rows {
        text.push_str(r);
        text.push('\n');
    }
    match std::fs::write(&path, text) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// Render an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(line, "{h:<w$}  ");
    }
    out.push_str(line.trim_end());
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    out.push_str(&"-".repeat(total.saturating_sub(2)));
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(line, "{cell:<w$}  ");
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Count code metrics of a source file, excluding its `#[cfg(test)]`
/// module (the paper's NCSS figures measure shipped code, not tests).
pub fn production_stats(path: &std::path::Path) -> nserver_codegen::CodeStats {
    let text = std::fs::read_to_string(path).unwrap_or_default();
    let cut = text.find("#[cfg(test)]").unwrap_or(text.len());
    nserver_codegen::count_source(&text[..cut])
}

/// Sum production code metrics over files under a crate's `src`, given
/// paths relative to that `src` directory.
pub fn stats_for(crate_name: &str, files: &[&str]) -> nserver_codegen::CodeStats {
    let src = crates_dir().join(crate_name).join("src");
    files
        .iter()
        .map(|f| production_stats(&src.join(f)))
        .fold(nserver_codegen::CodeStats::default(), |a, b| a.merge(b))
}

/// `--quick` flag: shrink simulation windows for smoke runs.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladders_are_log_spaced() {
        for w in CLIENT_LADDER.windows(2) {
            assert_eq!(w[1], w[0] * 2);
        }
        assert_eq!(CLIENT_LADDER[10], 1024);
        assert_eq!(FIG6_LADDER[7], 128);
    }

    #[test]
    fn render_table_aligns_columns() {
        let t = render_table(
            &["a", "b"],
            &[
                vec!["x".into(), "1".into()],
                vec!["longer".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("x"));
    }

    #[test]
    fn production_stats_excludes_tests() {
        let dir = std::env::temp_dir().join(format!("nbench-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("x.rs");
        std::fs::write(&p, "fn a() {}\n#[cfg(test)]\nmod tests { fn b() {} }\n").unwrap();
        let s = production_stats(&p);
        assert_eq!(s.methods, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_for_reads_real_crates() {
        let s = stats_for("http", &["parse.rs", "types.rs"]);
        assert!(s.ncss > 100, "ncss {}", s.ncss);
        assert!(s.methods > 10);
    }

    #[test]
    fn results_dir_is_workspace_level() {
        assert!(results_dir().ends_with("results"));
    }
}
