//! Integration tests of the generative path: generate frameworks for the
//! paper's configurations, validate their structure against the Table 2
//! crosscut facts, and compile + run one generated crate for real.

use nserver_codegen::{generate, registry, CrosscutMatrix, OptionId};
use nserver_core::options::{EventScheduling, ServerOptions};
use nserver_ftp::cops_ftp_options;
use nserver_http::{cops_http_options, cops_http_scheduling_options};

#[test]
fn http_and_ftp_presets_generate_different_frameworks() {
    let http = generate("cops-http", &cops_http_options(), "../crates");
    let ftp = generate("cops-ftp", &cops_ftp_options(), "../crates");
    // O4: async machinery exists only in the HTTP framework.
    assert!(http.file("src/framework/completion_event.rs").is_some());
    assert!(ftp.file("src/framework/completion_event.rs").is_none());
    // O5: the Processor Controller exists only in the FTP framework.
    assert!(http.file("src/framework/processor_controller.rs").is_none());
    assert!(ftp.file("src/framework/processor_controller.rs").is_some());
    // O6: the cache exists only in the HTTP framework.
    assert!(http.file("src/framework/cache.rs").is_some());
    assert!(ftp.file("src/framework/cache.rs").is_none());
}

#[test]
fn scheduling_variant_crosscuts_the_expected_classes() {
    // The paper: enabling O8 adds a priority field to Event and the
    // Communicator and swaps the Event Processor's queue — crosscutting
    // several components at generation time.
    let base = generate("base", &cops_http_options(), "../crates");
    let sched = generate("sched", &cops_http_scheduling_options(1, 10), "../crates");
    let m = CrosscutMatrix::build();
    let o8_col = OptionId::ALL
        .iter()
        .position(|&o| o == OptionId::O8)
        .unwrap();
    let mut checked = 0;
    for (spec, row) in registry().iter().zip(&m.cells) {
        let o8_dependent = !matches!(row[o8_col], nserver_codegen::crosscut::Mark::None);
        let path = format!("src/framework/{}.rs", spec.module);
        let (Some(a), Some(b)) = (base.file(&path), sched.file(&path)) else {
            continue;
        };
        // O6 also differs between the two presets (scheduling experiment
        // disables the cache), so only classes untouched by O6 give a
        // clean O8 signal.
        let o6_dependent = spec.depends_on(OptionId::O6);
        if o8_dependent && !o6_dependent {
            assert_ne!(a.content, b.content, "{} should change with O8", spec.name);
            checked += 1;
        }
    }
    assert!(checked >= 4, "checked only {checked} O8-dependent classes");
}

#[test]
fn generated_event_class_gains_priority_field_with_o8() {
    let opts = ServerOptions {
        event_scheduling: EventScheduling::Yes { quotas: vec![4, 1] },
        ..ServerOptions::default()
    };
    let with = generate("with", &opts, "../crates");
    let without = generate("without", &ServerOptions::default(), "../crates");
    let ev_with = &with.file("src/framework/event.rs").unwrap().content;
    let ev_without = &without.file("src/framework/event.rs").unwrap().content;
    assert!(ev_with.contains("pub priority: Priority"));
    assert!(!ev_without.contains("pub priority: Priority"));
}

#[test]
fn generated_framework_compiles_and_runs() {
    // Expand the COPS-HTTP template into a scratch crate and actually
    // build and smoke-run it against this workspace's runtime crates.
    let dir = std::env::temp_dir().join(format!("nserver-genbuild-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let crates = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .join("crates");
    let fw = generate(
        "generated-smoke",
        &cops_http_options(),
        crates.to_str().unwrap(),
    );
    fw.write_to(&dir).unwrap();

    let build = std::process::Command::new("cargo")
        .args(["build", "--offline", "--quiet"])
        .current_dir(&dir)
        .output()
        .expect("spawn cargo");
    assert!(
        build.status.success(),
        "generated crate failed to build:\n{}",
        String::from_utf8_lossy(&build.stderr)
    );

    let run = std::process::Command::new(dir.join("target/debug/generated-smoke"))
        .env("NSERVER_GENERATED_SMOKE", "1")
        .output()
        .expect("run generated server");
    assert!(run.status.success());
    let stdout = String::from_utf8_lossy(&run.stdout);
    assert!(
        stdout.contains("listening on 127.0.0.1:"),
        "unexpected output: {stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn generated_ftp_framework_compiles_and_runs() {
    // The COPS-FTP preset exercises the opposite gates from the HTTP one:
    // synchronous completions (no completion classes), dynamic allocation
    // (Processor Controller generated), no cache.
    let dir = std::env::temp_dir().join(format!("nserver-genftp-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let crates = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .join("crates");
    let fw = generate(
        "generated-ftp-smoke",
        &cops_ftp_options(),
        crates.to_str().unwrap(),
    );
    assert!(fw.file("src/framework/processor_controller.rs").is_some());
    assert!(fw.file("src/framework/completion_event.rs").is_none());
    fw.write_to(&dir).unwrap();

    let build = std::process::Command::new("cargo")
        .args(["build", "--offline", "--quiet"])
        .current_dir(&dir)
        .output()
        .expect("spawn cargo");
    assert!(
        build.status.success(),
        "generated FTP-preset crate failed to build:\n{}",
        String::from_utf8_lossy(&build.stderr)
    );
    let run = std::process::Command::new(dir.join("target/debug/generated-ftp-smoke"))
        .env("NSERVER_GENERATED_SMOKE", "1")
        .output()
        .expect("run generated server");
    assert!(run.status.success());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ncss_of_generated_frameworks_scales_with_enabled_options() {
    let minimal = ServerOptions {
        encode_decode: false,
        separate_handler_pool: false,
        thread_allocation: nserver_core::options::ThreadAllocation::Static { threads: 1 },
        ..ServerOptions::default()
    };
    let small = generate("small", &minimal, "../crates").generated_stats();
    let full = generate("full", &cops_http_options(), "../crates").generated_stats();
    assert!(
        full.ncss > small.ncss,
        "full {} <= minimal {}",
        full.ncss,
        small.ncss
    );
    assert!(full.classes > small.classes);
}
