//! A small deterministic RNG (SplitMix64) for reproducible simulations.
//!
//! The experiment harnesses need reproducibility above all: two runs with
//! the same seed must schedule identical event sequences so that paper
//! figures regenerate bit-identically. SplitMix64 passes BigCrush-level
//! statistical tests for this use and needs no external dependency, keeping
//! the simulator's determinism independent of `rand` version bumps.

/// SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Create a generator from a seed. Equal seeds ⇒ equal streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derive an independent stream for a sub-component (e.g. one per
    /// client) so adding a consumer does not perturb the others.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ salt.wrapping_mul(0x9E3779B97F4A7C15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift rejection-free mapping (Lemire); bias is < 2^-64*n,
        // negligible for simulation workloads.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Exponentially distributed value with the given mean.
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::new(43);
        assert_ne!(SimRng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut r = SimRng::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = SimRng::new(9);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            // Expect 10_000 each; allow ±5%.
            assert!((9500..10500).contains(&c), "count {c} out of tolerance");
        }
    }

    #[test]
    fn range_inclusive() {
        let mut r = SimRng::new(1);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = r.range(3, 5);
            assert!((3..=5).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn exp_has_requested_mean() {
        let mut r = SimRng::new(5);
        let n = 200_000;
        let mean = 20.0;
        let sum: f64 = (0..n).map(|_| r.exp(mean)).sum();
        let observed = sum / n as f64;
        assert!((observed - mean).abs() < 0.5, "mean {observed}");
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut root = SimRng::new(11);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let a_seq: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let b_seq: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        assert_ne!(a_seq, b_seq);
        // Re-deriving with the same root seed reproduces the same forks.
        let mut root2 = SimRng::new(11);
        let mut a2 = root2.fork(1);
        let a2_seq: Vec<u64> = (0..10).map(|_| a2.next_u64()).collect();
        assert_eq!(a_seq, a2_seq);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
